// The simulated compute device: owns "device memory" allocations, assigns
// virtual device addresses (used by the coalescing analyzer), and keeps a
// ledger of host<->device transfers for Table 3's transfer-time column.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "hw/device_spec.h"
#include "timing/model.h"

namespace g80 {

class Device;

// Bookkeeping for explicit host<->device copies (paper §2: "all data
// communication ... between CPU and GPU is explicitly performed through the
// GPU device driver").  Counters are atomic: g80rt stream threads record
// transfers concurrently (each counter is independently monotonic; callers
// read totals only after synchronizing, so no cross-counter snapshot is
// needed).
//
// Two accounting horizons.  The epoch counters (h2d_bytes & co.) are what
// reset() zeroes — apps use them to scope the measurement to one phase, and
// Device::reset() zeroes them as part of tearing execution state down.  The
// lifetime counters keep accumulating across every reset: they are the
// billing-grade totals g80serve's per-client accounting reads, so fault
// recovery (watchdog -> Device::reset -> relaunch) can never erase a
// client's transfer history (docs/serving.md, "Accounting").
class TransferLedger {
 public:
  void record_h2d(std::uint64_t bytes) {
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    h2d_count_.fetch_add(1, std::memory_order_relaxed);
    lifetime_h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    lifetime_h2d_count_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_d2h(std::uint64_t bytes) {
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    d2h_count_.fetch_add(1, std::memory_order_relaxed);
    lifetime_d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    lifetime_d2h_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // Starts a new epoch; lifetime totals are preserved.
  void reset() {
    h2d_bytes_ = 0;
    d2h_bytes_ = 0;
    h2d_count_ = 0;
    d2h_count_ = 0;
  }

  // --- Current epoch (since construction or the last reset) ---
  std::uint64_t h2d_bytes() const { return h2d_bytes_.load(); }
  std::uint64_t d2h_bytes() const { return d2h_bytes_.load(); }
  std::uint64_t total_bytes() const { return h2d_bytes() + d2h_bytes(); }
  std::uint64_t transfer_count() const {
    return h2d_count_.load() + d2h_count_.load();
  }

  // --- Lifetime (survives reset() and Device::reset()) ---
  std::uint64_t lifetime_h2d_bytes() const { return lifetime_h2d_bytes_.load(); }
  std::uint64_t lifetime_d2h_bytes() const { return lifetime_d2h_bytes_.load(); }
  std::uint64_t lifetime_total_bytes() const {
    return lifetime_h2d_bytes() + lifetime_d2h_bytes();
  }
  std::uint64_t lifetime_transfer_count() const {
    return lifetime_h2d_count_.load() + lifetime_d2h_count_.load();
  }

  double seconds(const DeviceSpec& spec) const {
    return transfer_seconds(spec, total_bytes(), transfer_count());
  }
  double lifetime_seconds(const DeviceSpec& spec) const {
    return transfer_seconds(spec, lifetime_total_bytes(),
                            lifetime_transfer_count());
  }

 private:
  std::atomic<std::uint64_t> h2d_bytes_{0}, d2h_bytes_{0};
  std::atomic<std::uint64_t> h2d_count_{0}, d2h_count_{0};
  std::atomic<std::uint64_t> lifetime_h2d_bytes_{0}, lifetime_d2h_bytes_{0};
  std::atomic<std::uint64_t> lifetime_h2d_count_{0}, lifetime_d2h_count_{0};
};

// A typed span of device memory.  Element types must be trivially copyable
// and 4/8/16 bytes wide (the access sizes G80 can issue), or plain arrays of
// such.  Backing storage lives host-side; the `device_addr` is the virtual
// address the memory analyzers see.
template <class T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* dev, std::uint64_t device_addr, std::size_t n)
      : dev_(dev), addr_(device_addr), storage_(n) {}

  std::size_t size() const { return storage_.size(); }
  std::uint64_t device_addr() const { return addr_; }
  std::uint64_t bytes() const { return storage_.size() * sizeof(T); }

  // Explicit transfers (logged).  Implemented in device.h below Device.
  void copy_from_host(std::span<const T> src);
  std::vector<T> copy_to_host() const;
  void fill(const T& v) { std::fill(storage_.begin(), storage_.end(), v); }

  // Direct backing-store access for views and test assertions (does not model
  // a PCIe transfer; use copy_* in application code).
  T* raw() { return storage_.data(); }
  const T* raw() const { return storage_.data(); }

 private:
  Device* dev_ = nullptr;
  std::uint64_t addr_ = 0;
  std::vector<T> storage_;
};

// Read-only constant-space buffer (64 KB total on G80), served through the
// broadcast constant cache.
template <class T>
class ConstantBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ConstantBuffer() = default;
  ConstantBuffer(Device* dev, std::uint64_t addr, std::size_t n)
      : dev_(dev), addr_(addr), storage_(n) {}

  std::size_t size() const { return storage_.size(); }
  std::uint64_t device_addr() const { return addr_; }
  void copy_from_host(std::span<const T> src);
  const T* raw() const { return storage_.data(); }

 private:
  Device* dev_ = nullptr;
  std::uint64_t addr_ = 0;
  std::vector<T> storage_;
};

// Read-only texture-space buffer served through the per-SM texture cache.
template <class T>
class Texture1D {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Texture1D() = default;
  Texture1D(Device* dev, std::uint64_t addr, std::size_t n)
      : dev_(dev), addr_(addr), storage_(n) {}

  std::size_t size() const { return storage_.size(); }
  std::uint64_t device_addr() const { return addr_; }
  void copy_from_host(std::span<const T> src);
  const T* raw() const { return storage_.data(); }

 private:
  Device* dev_ = nullptr;
  std::uint64_t addr_ = 0;
  std::vector<T> storage_;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::geforce_8800_gtx())
      : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }
  TransferLedger& ledger() { return ledger_; }
  const TransferLedger& ledger() const { return ledger_; }

  template <class T>
  DeviceBuffer<T> alloc(std::size_t n) {
    return DeviceBuffer<T>(this, allocate_range(checked_bytes<T>(n)), n);
  }

  template <class T>
  ConstantBuffer<T> alloc_constant(std::size_t n) {
    const std::uint64_t bytes = checked_bytes<T>(n);
    if (constant_used_ + bytes > kConstantSpaceBytes) {
      raise(Status::kConstantSpaceExceeded,
            "constant allocation of " + std::to_string(bytes) + " B over " +
                std::to_string(constant_used_) + " B already used exceeds the " +
                std::to_string(kConstantSpaceBytes) + " B constant space");
    }
    constant_used_ += bytes;
    return ConstantBuffer<T>(this, allocate_range(bytes), n);
  }

  template <class T>
  Texture1D<T> alloc_texture(std::size_t n) {
    return Texture1D<T>(this, allocate_range(checked_bytes<T>(n)), n);
  }

  std::uint64_t bytes_allocated() const { return next_addr_ - kBaseAddr; }

  // --- Structured error state (cudaGetLastError / cudaPeekAtLastError) ---
  // The most recent Status raised against this device.  Peek leaves it in
  // place; get clears it back to kSuccess, exactly like the CUDA runtime.
  // Atomic so concurrent g80rt stream threads can record failures without a
  // data race (last writer wins, as with the real runtime's sticky error).
  Status peek_last_error() const { return status_.load(); }
  Status get_last_error() { return status_.exchange(Status::kSuccess); }
  void record_status(Status s) { status_.store(s); }
  // Record `s` sticky and throw StatusError.  Hosts choose their style:
  // catch the exception, or catch-and-ignore then branch on get_last_error().
  [[noreturn]] void raise(Status s, const std::string& msg) {
    record_status(s);
    throw StatusError(s, std::string(status_name(s)) + ": " + msg);
  }

  // --- Recovery semantics (g80resil, cudaDeviceReset-style) ---
  // Tears the device back down to its post-construction state: runs every
  // registered reset hook (g80rt registers one that drains its streams and
  // clears their sticky async errors), clears the sticky Status, starts a
  // new TransferLedger epoch (the ledger's lifetime totals survive, so
  // serve-side per-client accounting is never erased by fault recovery),
  // and releases the whole device address space (allocation cursor and
  // constant-space budget return to zero).
  //
  // Like cudaDeviceReset, this invalidates every outstanding DeviceBuffer /
  // ConstantBuffer / Texture1D handed out by this device: their backing
  // storage stays host-side-valid (no dangling memory), but their virtual
  // device addresses will be reissued to future allocations, so the memory
  // analyzers would see aliased address ranges.  Callers must re-allocate
  // and re-upload after a reset — the fault-campaign engine
  // (resil/campaign.h) demonstrates the full recover-and-relaunch cycle.
  // `generation()` increments on every reset so long-lived layers can detect
  // that their cached handles went stale.
  void reset() {
    // Hooks run first (stream drain must happen while errors/ledger are
    // still observable), outside the registry lock so a hook may touch the
    // device freely.
    std::vector<std::function<void()>> hooks;
    {
      std::lock_guard<std::mutex> lk(hooks_mu_);
      hooks.reserve(reset_hooks_.size());
      for (auto& [id, fn] : reset_hooks_) hooks.push_back(fn);
    }
    for (auto& fn : hooks) fn();
    ledger_.reset();
    next_addr_ = kBaseAddr;
    constant_used_ = 0;
    status_.store(Status::kSuccess);
    generation_.fetch_add(1);
  }

  // Number of resets performed; buffers allocated under an older generation
  // are stale after a reset.
  std::uint64_t generation() const { return generation_.load(); }

  // Registers a callback run at the start of every reset() (e.g. a g80rt
  // Runtime draining its streams).  Returns an id for remove_reset_hook.
  std::uint64_t add_reset_hook(std::function<void()> hook) {
    std::lock_guard<std::mutex> lk(hooks_mu_);
    const std::uint64_t id = next_hook_id_++;
    reset_hooks_.emplace_back(id, std::move(hook));
    return id;
  }
  void remove_reset_hook(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(hooks_mu_);
    for (auto it = reset_hooks_.begin(); it != reset_hooks_.end(); ++it) {
      if (it->first == id) {
        reset_hooks_.erase(it);
        return;
      }
    }
  }

  static constexpr std::uint64_t kConstantSpaceBytes = 64 * 1024;

 private:
  // Validate an element-count request before any address arithmetic: zero
  // elements and n*sizeof(T) overflow both poison range bookkeeping.
  template <class T>
  std::uint64_t checked_bytes(std::size_t n) {
    if (n == 0) raise(Status::kInvalidValue, "zero-element device allocation");
    if (n > std::numeric_limits<std::uint64_t>::max() / sizeof(T)) {
      raise(Status::kInvalidValue,
            "allocation size overflows: " + std::to_string(n) + " elements of " +
                std::to_string(sizeof(T)) + " B");
    }
    return static_cast<std::uint64_t>(n) * sizeof(T);
  }

  std::uint64_t allocate_range(std::uint64_t bytes) {
    // cudaMalloc-style 256 B alignment keeps row starts on 16-word lines.
    constexpr std::uint64_t kAlign = 256;
    const std::uint64_t addr = (next_addr_ + kAlign - 1) / kAlign * kAlign;
    if (addr + bytes - kBaseAddr > spec_.global_mem_bytes) {
      raise(Status::kMemoryAllocation,
            "device memory exhausted: " + std::to_string(addr + bytes - kBaseAddr) +
                " B > " + std::to_string(spec_.global_mem_bytes) +
                " B (the paper's PNS capacity limit, Table 3)");
    }
    next_addr_ = addr + bytes;
    return addr;
  }

  static constexpr std::uint64_t kBaseAddr = 1 << 20;

  DeviceSpec spec_;
  TransferLedger ledger_;
  // Allocation is host-thread-only (as in CUDA 0.8, where cudaMalloc is a
  // synchronous driver call); these two need no synchronization.
  std::uint64_t next_addr_ = kBaseAddr;
  std::uint64_t constant_used_ = 0;
  std::atomic<Status> status_{Status::kSuccess};
  std::atomic<std::uint64_t> generation_{0};
  std::mutex hooks_mu_;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> reset_hooks_;
  std::uint64_t next_hook_id_ = 1;
};

template <class T>
void DeviceBuffer<T>::copy_from_host(std::span<const T> src) {
  G80_CHECK(src.size() <= storage_.size());
  std::memcpy(storage_.data(), src.data(), src.size_bytes());
  if (dev_) dev_->ledger().record_h2d(src.size_bytes());
}

template <class T>
std::vector<T> DeviceBuffer<T>::copy_to_host() const {
  if (dev_) dev_->ledger().record_d2h(bytes());
  return storage_;
}

template <class T>
void ConstantBuffer<T>::copy_from_host(std::span<const T> src) {
  G80_CHECK(src.size() <= storage_.size());
  std::memcpy(storage_.data(), src.data(), src.size_bytes());
  if (dev_) dev_->ledger().record_h2d(src.size_bytes());
}

template <class T>
void Texture1D<T>::copy_from_host(std::span<const T> src) {
  G80_CHECK(src.size() <= storage_.size());
  std::memcpy(storage_.data(), src.data(), src.size_bytes());
  if (dev_) dev_->ledger().record_h2d(src.size_bytes());
}

}  // namespace g80
