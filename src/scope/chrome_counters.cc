#include "scope/chrome_counters.h"

#include <cstdio>
#include <utility>
#include <vector>

namespace g80::scope {

namespace {

constexpr int kPid = 1;  // same modeled-device process as the engine spans

void emit_counter(JsonWriter& w, const char* name, double ts_us,
                  std::initializer_list<std::pair<const char*, double>> args) {
  w.begin_object()
      .kv("name", name)
      .kv("ph", "C")
      .kv("pid", kPid)
      .kv("ts", ts_us);
  w.key("args").begin_object();
  for (const auto& [k, v] : args) w.kv(k, v);
  w.end_object().end_object();
}

void emit_launch_counters(JsonWriter& w, const DeviceSpec& spec,
                          const LaunchRecord& rec, double t0_s) {
  const KernelScope& sc = rec.scope;
  if (sc.num_buckets == 0) return;
  const double cycle_s = 1.0 / (spec.core_clock_ghz * 1e9);
  const double bucket_s = sc.bucket_cycles * cycle_s;
  const double bw = sc.bucket_cycles;  // normalizer: cycles per bucket

  char stalls_name[40], occ_name[40];
  for (std::size_t i = 0; i < sc.sms.size(); ++i) {
    std::snprintf(stalls_name, sizeof stalls_name, "SM%02zu stalls", i);
    std::snprintf(occ_name, sizeof occ_name, "SM%02zu occupancy", i);
    const SmSeries& sm = sc.sms[i];
    for (int b = 0; b < sc.num_buckets; ++b) {
      const double ts_us = (t0_s + b * bucket_s) * 1e6;
      emit_counter(w, stalls_name, ts_us,
                   {{"issue", sm.issue_cycles[b] / bw},
                    {"serialization", sm.serialization_cycles[b] / bw},
                    {"uncoalesced", sm.uncoalesced_cycles[b] / bw},
                    {"mem_stall", sm.mem_stall_cycles[b] / bw},
                    {"barrier", sm.barrier_cycles[b] / bw}});
      emit_counter(w, occ_name, ts_us, {{"occupancy", sm.occupancy[b]}});
    }
    // Close the track at the horizon so the chart drops to zero instead of
    // bleeding the last bucket into the next kernel.
    const double end_us = (t0_s + sc.num_buckets * bucket_s) * 1e6;
    emit_counter(w, stalls_name, end_us,
                 {{"issue", 0.0},
                  {"serialization", 0.0},
                  {"uncoalesced", 0.0},
                  {"mem_stall", 0.0},
                  {"barrier", 0.0}});
    emit_counter(w, occ_name, end_us, {{"occupancy", 0.0}});
  }

  for (int b = 0; b < sc.num_buckets; ++b) {
    emit_counter(w, "DRAM utilization", (t0_s + b * bucket_s) * 1e6,
                 {{"utilization", sc.dram_utilization[b]}});
  }
  emit_counter(w, "DRAM utilization",
               (t0_s + sc.num_buckets * bucket_s) * 1e6,
               {{"utilization", 0.0}});
}

}  // namespace

std::string chrome_trace_with_counters(const Timeline& tl,
                                       const Session& session,
                                       const DeviceSpec& spec,
                                       prof::ChromeTraceOptions opt) {
  if (opt.spec == nullptr) opt.spec = &spec;
  const std::vector<LaunchRecord> records = session.launches();
  opt.extra_events = [&tl, &spec, records](JsonWriter& w) {
    for (const LaunchRecord& rec : records) {
      for (const TimelineSpan& s : tl.spans()) {
        if (s.scope_id != rec.id) continue;
        // Align the series to end with the span: the fixed launch overhead
        // leads, the modeled kernel execution trails.
        const double t0 = s.end_s - rec.scope.horizon_seconds(spec);
        emit_launch_counters(w, spec, rec, t0);
        break;
      }
    }
  };
  return prof::chrome_trace_json(tl, opt);
}

}  // namespace g80::scope
