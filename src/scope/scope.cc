#include "scope/scope.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace g80::scope {

namespace {

// Integrates a quantity spread uniformly over the time span [s0, s1) into
// fixed-width buckets: each bucket receives rate x overlap, so the sum over
// buckets equals `q` exactly (up to rounding) regardless of bucket width.
void deposit(std::vector<double>& buckets, double bucket_cycles, double s0,
             double s1, double q) {
  if (q == 0.0 || s1 <= s0) return;
  const double rate = q / (s1 - s0);
  const int nb = static_cast<int>(buckets.size());
  int b0 = std::clamp(static_cast<int>(s0 / bucket_cycles), 0, nb - 1);
  int b1 = std::clamp(static_cast<int>(s1 / bucket_cycles), 0, nb - 1);
  for (int b = b0; b <= b1; ++b) {
    const double lo = std::max(s0, b * bucket_cycles);
    const double hi = std::min(s1, (b + 1) * bucket_cycles);
    if (hi > lo) buckets[b] += rate * (hi - lo);
  }
  // The span may end past the last bucket boundary by a rounding margin;
  // fold that sliver into the final bucket so conservation stays exact.
  const double past = s1 - nb * bucket_cycles;
  if (past > 0.0) buckets[nb - 1] += rate * past;
}

// Everything one wave deposits, per SM, at full residency (scale == 1).
struct WaveQuantities {
  double duration = 0;      // timing.wave_cycles
  double pure_issue = 0;    // issue floor minus the serialization below
  double serialization = 0; // bank-conflict + constant-cache replay slots
  double uncoalesced = 0;   // memory-port serialization from extra txns
  double mem_stall = 0;     // residual: wave - issue floor - barrier
  double barrier = 0;       // timing.sync_stall_cycles
  double instructions = 0;  // warp-instructions issued
  double dram_bytes = 0;
  double warps = 0;         // resident warps (N)
  int barrier_intervals = 1;
};

// Deposits one wave starting at `s0` with residency `scale` (the tail wave
// of a partially-filled SM runs t/blocks_per_sm of a full wave: duration and
// extensive quantities shrink together, so rates stay flat while occupancy
// visibly drops).  The wave alternates [work][barrier-wait] segments, one
// pair per barrier interval.
void deposit_wave(SmSeries& sm, double bucket_cycles, double s0, double scale,
                  const WaveQuantities& wq) {
  const double duration = wq.duration * scale;
  if (duration <= 0.0) return;
  // Segmenting below bucket resolution only costs time; collapse to one
  // interval once the whole wave fits in a bucket.
  int k = wq.barrier_intervals;
  if (duration <= bucket_cycles) k = 1;

  // Resident warps cover the whole wave, barrier waits included (the warps
  // are still occupying their contexts); normalized to a time-weighted
  // average after all deposits.
  deposit(sm.active_warps, bucket_cycles, s0, s0 + duration,
          wq.warps * scale * duration);

  const double work_total = std::max(0.0, duration - wq.barrier * scale);
  const double bar_total = duration - work_total;
  const double work_dt = work_total / k;
  const double bar_dt = bar_total / k;
  double t = s0;
  for (int i = 0; i < k; ++i) {
    const double f = scale / k;  // this segment's share of the wave
    deposit(sm.issue_cycles, bucket_cycles, t, t + work_dt, wq.pure_issue * f);
    deposit(sm.serialization_cycles, bucket_cycles, t, t + work_dt,
            wq.serialization * f);
    deposit(sm.uncoalesced_cycles, bucket_cycles, t, t + work_dt,
            wq.uncoalesced * f);
    deposit(sm.mem_stall_cycles, bucket_cycles, t, t + work_dt,
            wq.mem_stall * f);
    deposit(sm.instructions, bucket_cycles, t, t + work_dt,
            wq.instructions * f);
    deposit(sm.dram_bytes, bucket_cycles, t, t + work_dt, wq.dram_bytes * f);
    t += work_dt;
    deposit(sm.barrier_cycles, bucket_cycles, t, t + bar_dt, wq.barrier * f);
    t += bar_dt;
  }
}

}  // namespace

KernelScope derive_scope(const DeviceSpec& spec, const Occupancy& occ,
                         std::uint64_t total_blocks,
                         const TraceSummary& summary,
                         const KernelTiming& timing,
                         const BucketConfig& cfg) {
  G80_CHECK_MSG(summary.num_warps > 0,
                "scope derivation requires at least one traced warp");
  G80_CHECK(total_blocks > 0);

  KernelScope out;
  const int num_sms = spec.num_sms;
  out.sms.resize(static_cast<std::size_t>(num_sms));

  // --- Full-wave quantities per SM, from the aggregate model's terms ---
  const double nw = static_cast<double>(summary.num_warps);
  const double N = static_cast<double>(occ.active_warps_per_sm);
  const int bpw = std::max(1, occ.blocks_per_sm);
  const WarpTrace& tot = summary.total;

  // Wave schedule: `full` whole waves on every SM, then the remainder
  // blocks round-robin (SM i takes `tail_blocks(i)`).
  const std::uint64_t blocks_per_wave =
      static_cast<std::uint64_t>(bpw) * static_cast<std::uint64_t>(num_sms);
  const std::uint64_t full = total_blocks / blocks_per_wave;
  const std::uint64_t rem = total_blocks % blocks_per_wave;
  const auto tail_blocks = [&](int i) {
    return rem / static_cast<std::uint64_t>(num_sms) +
           (static_cast<std::uint64_t>(i) <
                    rem % static_cast<std::uint64_t>(num_sms)
                ? 1u
                : 0u);
  };

  // Horizon: the schedule's makespan — the busiest SM's finishing time.
  // Matches timing.kernel_cycles exactly when the grid fills whole waves;
  // for a remainder wave the aggregate model amortizes the tail
  // fractionally across SMs while the schedule concentrates it, so the
  // makespan can differ from kernel_cycles by up to one tail wave.
  const std::uint64_t max_tail = rem == 0 ? 0 : tail_blocks(0);
  out.horizon_cycles =
      (static_cast<double>(full) +
       static_cast<double>(max_tail) / static_cast<double>(bpw)) *
      timing.wave_cycles;
  if (out.horizon_cycles <= 0.0) return out;  // zero-work kernel: no series

  const int nb =
      std::clamp(cfg.target_buckets, 1, std::max(1, cfg.max_buckets));
  out.num_buckets = nb;
  out.bucket_cycles = out.horizon_cycles / nb;

  WaveQuantities wq;
  wq.duration = timing.wave_cycles;
  wq.warps = N;
  const double issue_wave = summary.mean_issue_cycles(spec) * N;
  wq.serialization =
      static_cast<double>(tot.shared_extra_passes + tot.const_extra_passes) /
      nw * spec.warp_issue_cycles() * N;
  // Same aggregate form as WarpTrace::issue_cycles, so the three issue
  // components recompose to the model's issue floor exactly.
  const double extra_txns =
      std::max(0.0, static_cast<double>(tot.global.transactions) -
                        2.0 * static_cast<double>(tot.global_instructions));
  wq.uncoalesced =
      extra_txns / nw * spec.uncoalesced_issue_cycles_per_txn * N;
  wq.pure_issue =
      std::max(0.0, issue_wave - wq.serialization - wq.uncoalesced);
  wq.barrier = timing.sync_stall_cycles;
  wq.mem_stall =
      std::max(0.0, timing.wave_cycles - issue_wave - timing.sync_stall_cycles);
  wq.instructions = static_cast<double>(tot.ops.total()) / nw * N;
  wq.dram_bytes = static_cast<double>(tot.global.bytes) /
                  static_cast<double>(summary.num_blocks) * bpw;

  const double syncs_per_warp =
      static_cast<double>(tot.ops[OpClass::kSync]) / nw;
  int k = static_cast<int>(std::lround(syncs_per_warp));
  if (wq.barrier > 0.0 && k < 1) k = 1;
  wq.barrier_intervals = std::clamp(k, 1, 64);

  for (int i = 0; i < num_sms; ++i) {
    SmSeries& sm = out.sms[static_cast<std::size_t>(i)];
    sm.active_warps.assign(nb, 0.0);
    sm.occupancy.assign(nb, 0.0);
    sm.issue_cycles.assign(nb, 0.0);
    sm.serialization_cycles.assign(nb, 0.0);
    sm.uncoalesced_cycles.assign(nb, 0.0);
    sm.mem_stall_cycles.assign(nb, 0.0);
    sm.barrier_cycles.assign(nb, 0.0);
    sm.instructions.assign(nb, 0.0);
    sm.dram_bytes.assign(nb, 0.0);

    for (std::uint64_t w = 0; w < full; ++w) {
      deposit_wave(sm, out.bucket_cycles,
                   static_cast<double>(w) * wq.duration, 1.0, wq);
    }
    const std::uint64_t tail = tail_blocks(i);
    if (tail > 0) {
      deposit_wave(sm, out.bucket_cycles,
                   static_cast<double>(full) * wq.duration,
                   static_cast<double>(tail) / bpw, wq);
    }

    const double max_warps = static_cast<double>(spec.max_warps_per_sm());
    for (int b = 0; b < nb; ++b) {
      sm.active_warps[b] /= out.bucket_cycles;
      sm.occupancy[b] = max_warps > 0 ? sm.active_warps[b] / max_warps : 0.0;
    }
  }

  // --- Device DRAM track and utilization against the bandwidth ceiling ---
  out.device_dram_bytes.assign(nb, 0.0);
  out.dram_utilization.assign(nb, 0.0);
  for (const SmSeries& sm : out.sms) {
    for (int b = 0; b < nb; ++b) out.device_dram_bytes[b] += sm.dram_bytes[b];
  }
  const double ceiling = out.bucket_cycles * spec.dram_bytes_per_cycle();
  for (int b = 0; b < nb; ++b) {
    out.dram_utilization[b] = ceiling > 0 ? out.device_dram_bytes[b] / ceiling
                                          : 0.0;
  }

  // --- Launch totals (what the buckets must sum back to) ---
  // Every SM-wave contributes its scale; the scales sum to
  // total_blocks / blocks_per_sm across the device.
  const double sm_waves =
      static_cast<double>(total_blocks) / static_cast<double>(bpw);
  out.totals.issue_cycles = wq.pure_issue * sm_waves;
  out.totals.serialization_cycles = wq.serialization * sm_waves;
  out.totals.uncoalesced_cycles = wq.uncoalesced * sm_waves;
  out.totals.mem_stall_cycles = wq.mem_stall * sm_waves;
  out.totals.barrier_cycles = wq.barrier * sm_waves;
  out.totals.instructions = wq.instructions * sm_waves;
  out.totals.dram_bytes = wq.dram_bytes * sm_waves;

  // --- Per-source-line stall attribution ---
  // Each stall category's launch total splits across the recorded call
  // sites proportionally to the site's share of the cause; shares sum to
  // one, so the site table reconciles with the series totals exactly.
  std::uint64_t d_unc = 0, d_ser = 0, d_bar = 0, d_mem = 0;
  for (const SiteStats& s : summary.sites) {
    d_unc += s.extra_transactions;
    d_ser += s.shared_extra_passes + s.const_extra_passes;
    d_bar += s.syncs;
    d_mem += s.global_transactions;
  }
  out.sites.reserve(summary.sites.size());
  for (const SiteStats& s : summary.sites) {
    SiteAttribution a;
    a.file = s.file;
    a.line = s.line;
    a.site = s.site;
    a.global_instructions = s.global_instructions;
    a.syncs = s.syncs;
    if (d_unc > 0) {
      a.uncoalesced_cycles = out.totals.uncoalesced_cycles *
                             static_cast<double>(s.extra_transactions) /
                             static_cast<double>(d_unc);
    }
    if (d_ser > 0) {
      a.serialization_cycles =
          out.totals.serialization_cycles *
          static_cast<double>(s.shared_extra_passes + s.const_extra_passes) /
          static_cast<double>(d_ser);
    }
    if (d_bar > 0) {
      a.barrier_cycles = out.totals.barrier_cycles *
                         static_cast<double>(s.syncs) /
                         static_cast<double>(d_bar);
    }
    if (d_mem > 0) {
      a.mem_stall_cycles = out.totals.mem_stall_cycles *
                           static_cast<double>(s.global_transactions) /
                           static_cast<double>(d_mem);
    }
    out.sites.push_back(std::move(a));
  }
  return out;
}

}  // namespace g80::scope
