// Machine-readable exports of a g80scope session: a JSON document (schema
// "g80scope-series", provenance-stamped like every artifact the repo
// writes) and a flat CSV with one row per (launch, SM, bucket) for quick
// plotting.  docs/profiling.md documents both layouts.
#pragma once

#include <string>

#include "hw/device_spec.h"
#include "scope/session.h"

namespace g80::scope {

std::string scope_json(const Session& session, const DeviceSpec& spec);
std::string scope_csv(const Session& session);

}  // namespace g80::scope
