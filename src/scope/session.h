// Session sink for g80scope, mirroring prof::Profiler's contract: attach
// one to launches via `LaunchOptions::scope.sink` (or to a g80rt runtime
// via `RuntimeOptions::scope`) and it accumulates one derived KernelScope
// per launch.  Recording happens after the launch's passes complete, from
// statistics the trace pass produced anyway, so kernel outputs and
// LaunchStats are bit-identical with a scope attached or not
// (bench/scope_overhead.cc asserts this).
//
// Each record gets a session-unique id; launches routed through g80rt stamp
// that id on their timeline span (TimelineSpan::scope_id), which is how the
// Chrome-trace exporter (scope/chrome_counters.h) aligns counter tracks
// under the right kernel slice.
//
// Thread safety: g80rt streams record concurrently from their host threads;
// all mutation is mutex-guarded.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "resil/policy.h"
#include "scope/scope.h"

namespace g80::scope {

struct LaunchRecord {
  std::uint64_t id = 0;  // session-unique; stamped on timeline spans
  std::string kernel_name;
  std::uint64_t stream = 0;
  KernelScope scope;
  // g80resil recovery provenance of this launch (attempt count, fallback
  // level, recovered/timed-out flags); default-valued when resilience was
  // disabled, so existing consumers are unaffected.
  ResilienceStats resilience;
};

class Session {
 public:
  explicit Session(BucketConfig cfg = {}) : cfg_(cfg) {}

  // Appends a record and returns its id.
  std::uint64_t record(std::string kernel_name, std::uint64_t stream,
                       KernelScope scope, ResilienceStats resilience = {});

  // Records in arrival order (copy; the session keeps accepting records).
  std::vector<LaunchRecord> launches() const;
  std::uint64_t size() const;
  const BucketConfig& config() const { return cfg_; }

  void clear();

 private:
  BucketConfig cfg_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 0;
  std::vector<LaunchRecord> launches_;
};

}  // namespace g80::scope
