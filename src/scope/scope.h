// g80scope — time-resolved telemetry derived from the timing model.
//
// The analytical model (timing/model.h) reduces a launch to one number per
// wave; g80scope re-expands that number into a cycle-bucketed time series
// per SM — active warps, achieved occupancy, and an issue-vs-stall cycle
// breakdown (pure instruction issue, warp serialization from bank-conflict
// and constant-cache replays, memory-port serialization from uncoalesced
// transactions, exposed memory latency, barrier wait) plus modeled DRAM
// traffic against the device's bandwidth ceiling — and attributes the stall
// cycles back to kernel source lines via the recorder's call-site traces.
//
// The series is *derived*, not measured: it is a deterministic function of
// (DeviceSpec, Occupancy, grid size, TraceSummary, KernelTiming), computed
// after the launch's passes complete.  Attaching a scope therefore cannot
// perturb kernel outputs or timing (bench/scope_overhead.cc asserts
// bit-identical results with the scope on and off), and every extensive
// series conserves exactly: summing a quantity's buckets over all SMs
// reproduces the launch total the aggregate model implies
// (tests/scope_test.cc pins this down against g80prof's counters).
//
// The TraceSummary input comes from the batched recorder path by default
// (cudalite/trace_arena.h), whose contract is bit-identity with per-lane
// recording — so every bucket series and site attribution here is equal,
// element for element, under either recorder (tests/trace_batch_test.cc).
//
// How the expansion works
// -----------------------
//   * The grid executes as waves of `blocks_per_sm x num_sms` resident
//     blocks.  Full waves take `timing.wave_cycles` each; the remainder
//     wave distributes its blocks round-robin over the SMs, and an SM with
//     t of the usual blocks_per_sm blocks runs a tail wave scaled by
//     t/blocks_per_sm in both duration and every extensive quantity —
//     rates stay flat while resident warps (and thus occupancy) visibly
//     drop, which is exactly the tail-wave effect worth seeing.
//   * Within a wave, `round(syncs_per_warp)` barrier intervals alternate
//     [work][barrier-stall] segments, each quantity spread uniformly over
//     the work segments.  Buckets integrate rate x overlap, so the series
//     conserves by construction no matter the bucket width.
//   * Per-source-line attribution splits each launch-total stall category
//     across the call sites the trace pass recorded, proportionally to the
//     site's share of the category's cause (extra transactions, replay
//     passes, barrier count, global transactions) — shares sum to one, so
//     the site table reconciles with the series totals exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/device_spec.h"
#include "occupancy/occupancy.h"
#include "timing/model.h"
#include "timing/trace.h"

namespace g80::scope {

struct BucketConfig {
  // Buckets to aim for over the launch's modeled duration; the actual count
  // never exceeds max_buckets and never drops below 1.
  int target_buckets = 64;
  int max_buckets = 4096;
};

// Stall-cycle attribution for one kernel source line (one recorder call
// site).  Cycles are launch totals, summed over all SMs and waves.
struct SiteAttribution {
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t site = 0;  // recorder hash; stable within a run only
  double uncoalesced_cycles = 0;    // memory-port serialization (extra txns)
  double serialization_cycles = 0;  // bank-conflict + constant-cache replays
  double barrier_cycles = 0;        // exposed __syncthreads wait
  double mem_stall_cycles = 0;      // exposed global-memory latency
  // Context for the report: what this line did, per the sampled trace.
  std::uint64_t global_instructions = 0;
  std::uint64_t syncs = 0;

  double total_cycles() const {
    return uncoalesced_cycles + serialization_cycles + barrier_cycles +
           mem_stall_cycles;
  }
};

// One SM's bucket series.  Cycle quantities are cycles spent *in that
// bucket*; `active_warps`/`occupancy` are time-weighted averages over the
// bucket; `dram_bytes` is the SM's share of DRAM traffic issued in it.
struct SmSeries {
  std::vector<double> active_warps;
  std::vector<double> occupancy;            // active_warps / max warps per SM
  std::vector<double> issue_cycles;         // pure instruction issue
  std::vector<double> serialization_cycles; // shared/const replay slots
  std::vector<double> uncoalesced_cycles;   // memory-port serialization
  std::vector<double> mem_stall_cycles;     // exposed memory latency
  std::vector<double> barrier_cycles;       // barrier wait
  std::vector<double> instructions;         // warp-instructions issued
  std::vector<double> dram_bytes;
};

// Launch totals implied by the aggregate model; the per-bucket series above
// must sum back to these (the conservation contract).
struct ScopeTotals {
  double issue_cycles = 0;
  double serialization_cycles = 0;
  double uncoalesced_cycles = 0;
  double mem_stall_cycles = 0;
  double barrier_cycles = 0;
  double instructions = 0;
  double dram_bytes = 0;
};

struct KernelScope {
  // Makespan of the wave schedule (the busiest SM's finishing time); equals
  // timing.kernel_cycles whenever the grid fills whole waves.
  double horizon_cycles = 0;
  double bucket_cycles = 0;
  int num_buckets = 0;
  std::vector<SmSeries> sms;             // spec.num_sms entries
  std::vector<double> device_dram_bytes; // per bucket, summed over SMs
  std::vector<double> dram_utilization;  // vs the peak-bandwidth ceiling
  std::vector<SiteAttribution> sites;    // ordered by (file, line, site)
  ScopeTotals totals;

  // Bucket start time in cycles / seconds (for exporters).
  double bucket_start_cycles(int b) const { return b * bucket_cycles; }
  double horizon_seconds(const DeviceSpec& spec) const {
    return horizon_cycles / (spec.core_clock_ghz * 1e9);
  }
};

// Derive the time series from one launch's statistics.  Pure function; the
// same inputs always produce the same series.
KernelScope derive_scope(const DeviceSpec& spec, const Occupancy& occ,
                         std::uint64_t total_blocks,
                         const TraceSummary& summary,
                         const KernelTiming& timing,
                         const BucketConfig& cfg = {});

}  // namespace g80::scope
