#include "scope/session.h"

#include <utility>

#include "cudalite/launch.h"

namespace g80::scope {

std::uint64_t Session::record(std::string kernel_name, std::uint64_t stream,
                              KernelScope scope, ResilienceStats resilience) {
  std::lock_guard<std::mutex> lock(mu_);
  LaunchRecord r;
  const std::uint64_t id = next_id_++;
  r.id = id;
  r.kernel_name = std::move(kernel_name);
  r.stream = stream;
  r.scope = std::move(scope);
  r.resilience = std::move(resilience);
  launches_.push_back(std::move(r));
  return id;
}

std::vector<LaunchRecord> Session::launches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return launches_;
}

std::uint64_t Session::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return launches_.size();
}

void Session::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  launches_.clear();
}

namespace detail {

// Out-of-line bridge called from the launch template (cudalite/launch.h
// forward-declares it), keeping cudalite free of scope headers — the same
// pattern as prof::detail::record_launch.
std::uint64_t record_launch(Session& sink, const std::string& kernel_name,
                            std::uint64_t stream, const DeviceSpec& spec,
                            const LaunchStats& stats) {
  KernelScope scope =
      derive_scope(spec, stats.occupancy, stats.grid.count(), stats.trace,
                   stats.timing, sink.config());
  return sink.record(kernel_name.empty() ? "kernel" : kernel_name, stream,
                     std::move(scope), stats.resilience);
}

}  // namespace detail

}  // namespace g80::scope
