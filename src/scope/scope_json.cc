#include "scope/scope_json.h"

#include <cstdio>
#include <vector>

#include "common/json.h"
#include "common/provenance.h"

namespace g80::scope {

namespace {

void write_series(JsonWriter& w, const char* key,
                  const std::vector<double>& v) {
  w.key(key).begin_array();
  for (double x : v) w.value(x);
  w.end_array();
}

}  // namespace

std::string scope_json(const Session& session, const DeviceSpec& spec) {
  JsonWriter w;
  w.begin_object();
  Provenance p = build_provenance("g80scope-series");
  p.device = spec.name;
  p.device_spec_hash = device_spec_hash(spec);
  write_provenance(w, p);

  w.key("launches").begin_array();
  for (const LaunchRecord& rec : session.launches()) {
    const KernelScope& sc = rec.scope;
    w.begin_object()
        .kv("id", rec.id)
        .kv("kernel", rec.kernel_name)
        .kv("stream", rec.stream)
        .kv("horizon_cycles", sc.horizon_cycles)
        .kv("bucket_cycles", sc.bucket_cycles)
        .kv("num_buckets", sc.num_buckets);

    w.key("totals")
        .begin_object()
        .kv("issue_cycles", sc.totals.issue_cycles)
        .kv("serialization_cycles", sc.totals.serialization_cycles)
        .kv("uncoalesced_cycles", sc.totals.uncoalesced_cycles)
        .kv("mem_stall_cycles", sc.totals.mem_stall_cycles)
        .kv("barrier_cycles", sc.totals.barrier_cycles)
        .kv("instructions", sc.totals.instructions)
        .kv("dram_bytes", sc.totals.dram_bytes)
        .end_object();

    w.key("sms").begin_array();
    for (std::size_t i = 0; i < sc.sms.size(); ++i) {
      const SmSeries& sm = sc.sms[i];
      w.begin_object().kv("sm", static_cast<std::uint64_t>(i));
      write_series(w, "active_warps", sm.active_warps);
      write_series(w, "occupancy", sm.occupancy);
      write_series(w, "issue_cycles", sm.issue_cycles);
      write_series(w, "serialization_cycles", sm.serialization_cycles);
      write_series(w, "uncoalesced_cycles", sm.uncoalesced_cycles);
      write_series(w, "mem_stall_cycles", sm.mem_stall_cycles);
      write_series(w, "barrier_cycles", sm.barrier_cycles);
      write_series(w, "instructions", sm.instructions);
      write_series(w, "dram_bytes", sm.dram_bytes);
      w.end_object();
    }
    w.end_array();

    w.key("device").begin_object();
    write_series(w, "dram_bytes", sc.device_dram_bytes);
    write_series(w, "dram_utilization", sc.dram_utilization);
    w.end_object();

    w.key("sites").begin_array();
    for (const SiteAttribution& a : sc.sites) {
      w.begin_object()
          .kv("file", a.file)
          .kv("line", static_cast<std::uint64_t>(a.line))
          .kv("uncoalesced_cycles", a.uncoalesced_cycles)
          .kv("serialization_cycles", a.serialization_cycles)
          .kv("barrier_cycles", a.barrier_cycles)
          .kv("mem_stall_cycles", a.mem_stall_cycles)
          .kv("total_cycles", a.total_cycles())
          .kv("global_instructions", a.global_instructions)
          .kv("syncs", a.syncs)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string scope_csv(const Session& session) {
  std::string out =
      "launch_id,kernel,stream,sm,bucket,t0_cycles,active_warps,occupancy,"
      "issue_cycles,serialization_cycles,uncoalesced_cycles,mem_stall_cycles,"
      "barrier_cycles,instructions,dram_bytes\n";
  char buf[256];
  for (const LaunchRecord& rec : session.launches()) {
    const KernelScope& sc = rec.scope;
    for (std::size_t i = 0; i < sc.sms.size(); ++i) {
      const SmSeries& sm = sc.sms[i];
      for (int b = 0; b < sc.num_buckets; ++b) {
        std::snprintf(buf, sizeof buf,
                      "%llu,%s,%llu,%zu,%d,%.12g,%.12g,%.12g,%.12g,%.12g,"
                      "%.12g,%.12g,%.12g,%.12g,%.12g\n",
                      static_cast<unsigned long long>(rec.id),
                      rec.kernel_name.c_str(),
                      static_cast<unsigned long long>(rec.stream), i, b,
                      sc.bucket_start_cycles(b), sm.active_warps[b],
                      sm.occupancy[b], sm.issue_cycles[b],
                      sm.serialization_cycles[b], sm.uncoalesced_cycles[b],
                      sm.mem_stall_cycles[b], sm.barrier_cycles[b],
                      sm.instructions[b], sm.dram_bytes[b]);
        out += buf;
      }
    }
  }
  return out;
}

}  // namespace g80::scope
