// Merged Chrome-trace export: g80prof's engine spans plus g80scope's
// per-SM counter tracks, in one file chrome://tracing (or Perfetto's legacy
// importer) loads directly.
//
// The span side comes from prof::chrome_trace_json unchanged; the counter
// side rides its `extra_events` hook.  For every scoped launch that was
// routed through g80rt, the launch's timeline span carries the scope record
// id (TimelineSpan::scope_id), and the counter samples are aligned so the
// series *ends* at the span's end — the launch-overhead lead-in occupies
// the gap at the span's start.  Tracks emitted per device:
//
//   "SM00 stalls" .. "SMnn stalls"   stacked per-bucket fractions of the
//                                    SM's time: issue / serialization /
//                                    uncoalesced / mem_stall / barrier
//   "SM00 occupancy" .. etc.         achieved occupancy, 0..1
//   "DRAM utilization"               device DRAM bytes vs the bandwidth
//                                    ceiling, 0..1
//
// Scoped launches with no matching span (not routed through g80rt) are
// skipped; export those with scope_json/scope_csv instead.
#pragma once

#include <string>

#include "prof/chrome_trace.h"
#include "scope/session.h"
#include "timing/timeline.h"

namespace g80::scope {

std::string chrome_trace_with_counters(const Timeline& tl,
                                       const Session& session,
                                       const DeviceSpec& spec,
                                       prof::ChromeTraceOptions opt = {});

}  // namespace g80::scope
