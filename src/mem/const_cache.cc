#include "mem/const_cache.h"

#include <algorithm>
#include <set>

namespace g80 {

ConstAccessResult analyze_const_half_warp(const DeviceSpec& spec,
                                          const MemAccess* lanes,
                                          int lane_count) {
  const int hw = spec.warp_size / 2;
  lane_count = std::min(lane_count, hw);
  std::set<std::uint64_t> addrs;
  int active = 0;
  for (int k = 0; k < lane_count; ++k) {
    if (!lanes[k].active) continue;
    ++active;
    addrs.insert(lanes[k].addr);
  }
  ConstAccessResult r;
  if (active == 0) return r;
  r.serialization = static_cast<int>(addrs.size());
  r.broadcast = addrs.size() == 1;
  return r;
}

WarpConstCost analyze_const_warp(const DeviceSpec& spec, const WarpAccess& warp) {
  const int hw = spec.warp_size / 2;
  WarpConstCost cost;
  for (std::size_t lo = 0; lo < warp.size(); lo += hw) {
    const int n = static_cast<int>(std::min<std::size_t>(hw, warp.size() - lo));
    bool any_active = false;
    for (int k = 0; k < n; ++k) any_active |= warp[lo + k].active;
    if (!any_active) continue;
    const auto half = analyze_const_half_warp(spec, warp.data() + lo, n);
    cost.passes += half.serialization;
    cost.extra_passes += half.serialization - 1;
  }
  return cost;
}

WarpConstCost analyze_const_warp_soa(const DeviceSpec& spec,
                                     const SoaWarpAccess& row) {
  const int hw = spec.warp_size / 2;
  WarpConstCost cost;
  for (int lo = 0; lo < row.lanes; lo += hw) {
    const int n = std::min(hw, row.lanes - lo);
    const std::uint32_t half_mask =
        (n >= 32 ? ~0u : ((1u << n) - 1u)) & (row.mask >> lo);
    if (half_mask == 0) continue;
    // Distinct addresses among <= 16 active lanes: insert-unique array.
    std::uint64_t uniq[32];
    int nuniq = 0;
    for (int k = 0; k < n; ++k) {
      if ((half_mask >> k & 1u) == 0) continue;
      const std::uint64_t a = row.addrs[lo + k];
      int i = 0;
      while (i < nuniq && uniq[i] != a) ++i;
      if (i == nuniq) uniq[nuniq++] = a;
    }
    cost.passes += nuniq;
    cost.extra_passes += nuniq - 1;
  }
  return cost;
}

}  // namespace g80
