// Per-SM texture cache model (read-only, spatially-local).
//
// The paper's PNS case study (§5.2) moves read-only, irregularly-indexed
// tables into texture memory and gains 2.8x over uncached global access.
// We model an 8 KB, 32 B-line, LRU set-associative cache per SM: hits cost a
// short latency, misses cost a full DRAM round trip but fill a whole line so
// spatial locality pays.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/device_spec.h"
#include "mem/access.h"

namespace g80 {

class TextureCache {
 public:
  explicit TextureCache(const DeviceSpec& spec, int ways = 4);

  // Returns true on hit; on miss the line is filled (LRU eviction).
  bool access(std::uint64_t addr);

  // Batch entry point: one warp-level texture instruction as an SoA
  // trace-arena row.  Probes active lanes in lane order (cache state is
  // order-sensitive), exactly as per-lane access() calls would.
  struct WarpResult {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  WarpResult access_warp_soa(const SoaWarpAccess& row);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const;
  void reset_stats();

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  std::size_t line_bytes_;
  std::size_t num_sets_;
  int ways_;
  std::vector<Line> lines_;  // sets x ways
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace g80
