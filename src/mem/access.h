// Memory-access records shared by the coalescing and bank-conflict analyzers.
#pragma once

#include <cstdint>
#include <vector>

namespace g80 {

struct MemAccess {
  std::uint64_t addr = 0;  // byte address in the relevant address space
  std::uint32_t size = 4;  // access width in bytes (4, 8 or 16 on G80)
  // Static instruction identity (hash of the source location of the ld/st
  // call).  Lanes' accesses are grouped into warp-level instructions by
  // (site, per-lane occurrence), which stays correct even when divergent
  // lanes execute different numbers of accesses.
  std::uint32_t site = 0;
  bool active = false;     // lane predicated on?
  // Direction of the access (load vs store).  The coalescing rule is
  // direction-agnostic on G80, but the g80prof counters report loads and
  // stores separately (gld_* vs gst_*, like the CUDA Visual Profiler).
  bool store = false;
};

// One warp's simultaneous accesses for a single static instruction:
// `lanes[i]` is lane i's access (inactive lanes have active=false).
using WarpAccess = std::vector<MemAccess>;

// SoA view of the same thing, as one row of a trace-arena batch
// (cudalite/trace_arena.h): the static key is uniform across the warp by
// construction (size, direction), active lanes are a bit mask, and only the
// addresses vary per lane.  The *_soa analyzer entry points consume this
// directly — no per-instruction WarpAccess materialization — and are
// number-for-number equivalent to the AoS analyzers on the expanded warp.
struct SoaWarpAccess {
  std::uint32_t mask = 0;   // bit i: lane i active
  std::uint32_t size = 0;   // uniform access width in bytes
  const std::uint64_t* addrs = nullptr;  // lane i at addrs[i] (valid iff bit)
  int lanes = 0;            // warp size (<= 32)
};

}  // namespace g80
