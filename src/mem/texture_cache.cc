#include "mem/texture_cache.h"

#include "common/error.h"

namespace g80 {

TextureCache::TextureCache(const DeviceSpec& spec, int ways)
    : line_bytes_(spec.texture_cache_line), ways_(ways) {
  G80_CHECK(ways_ > 0 && line_bytes_ > 0);
  const std::size_t total_lines = spec.texture_cache_bytes / line_bytes_;
  G80_CHECK(total_lines % ways_ == 0);
  num_sets_ = total_lines / ways_;
  lines_.assign(num_sets_ * ways_, Line{});
}

bool TextureCache::access(std::uint64_t addr) {
  const std::uint64_t line_addr = addr / line_bytes_;
  const std::size_t set = line_addr % num_sets_;
  Line* base = &lines_[set * ways_];
  ++clock_;

  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line_addr) {
      base[w].lru = clock_;
      ++hits_;
      return true;
    }
  }
  // Miss: evict LRU way.
  int victim = 0;
  for (int w = 1; w < ways_; ++w) {
    if (!base[w].valid) { victim = w; break; }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  base[victim] = Line{line_addr, clock_, true};
  ++misses_;
  return false;
}

TextureCache::WarpResult TextureCache::access_warp_soa(
    const SoaWarpAccess& row) {
  WarpResult r;
  for (int k = 0; k < row.lanes; ++k) {
    if ((row.mask >> k & 1u) == 0) continue;
    if (access(row.addrs[k])) ++r.hits;
    else ++r.misses;
  }
  return r;
}

double TextureCache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void TextureCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace g80
