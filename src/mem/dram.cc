#include "mem/dram.h"

#include <algorithm>

namespace g80 {

double DramModel::effective_bandwidth_gbs() const {
  return spec_.dram_bandwidth_gbs * spec_.dram_efficiency;
}

double DramModel::effective_scattered_bandwidth_gbs() const {
  return spec_.dram_bandwidth_gbs * spec_.dram_scattered_efficiency;
}

double DramModel::bandwidth_cycles(const DramTraffic& traffic) const {
  const double bpc_seq = effective_bandwidth_gbs() / spec_.core_clock_ghz;
  const double bpc_rnd = effective_scattered_bandwidth_gbs() / spec_.core_clock_ghz;
  const double byte_cycles =
      static_cast<double>(traffic.coalesced_bytes()) / bpc_seq +
      static_cast<double>(traffic.scattered_bytes) / bpc_rnd;
  const double command_cycles = static_cast<double>(traffic.transactions) /
                                spec_.dram_transactions_per_cycle;
  return std::max(byte_cycles, command_cycles);
}

double DramModel::departure_delay_cycles() const {
  // At saturation one minimum-size transaction completes every
  // (transaction bytes / bytes-per-cycle) cycles, device-wide.
  const double bpc = effective_bandwidth_gbs() / spec_.core_clock_ghz;
  return static_cast<double>(spec_.dram_transaction_bytes) / bpc;
}

}  // namespace g80
