// Global-memory coalescing analyzer implementing the G80 (compute 1.0/1.1)
// half-warp rule the paper's principle "reorder accesses to off-chip memory
// to combine requests to the same or contiguous memory locations" refers to.
//
// Rule (per half-warp of 16 lanes):
//   the access is COALESCED into one transaction iff every active lane k
//   accesses a `size`-byte word at base + k*size, with base aligned to
//   16*size bytes (a "16-word line", §3.2).  Inactive lanes leave holes but
//   do not break coalescing.  Otherwise the half-warp is serialized into one
//   transaction per active lane.
//
// Each transaction moves at least `dram_transaction_bytes` (32 B) from DRAM,
// which is how an uncoalesced stream wastes most of the 86.4 GB/s.
#pragma once

#include <cstdint>

#include "hw/device_spec.h"
#include "mem/access.h"

namespace g80 {

struct CoalesceResult {
  int transactions = 0;             // DRAM requests issued
  std::uint64_t dram_bytes = 0;     // bytes actually moved (>= useful bytes)
  std::uint64_t scattered_bytes = 0;  // subset moved by serialized accesses
  std::uint64_t useful_bytes = 0;   // bytes the program asked for
  bool coalesced = false;           // single-transaction half-warps only

  CoalesceResult& operator+=(const CoalesceResult& o);
  // dram_bytes / useful_bytes; 1.0 is perfect, 8.0 means 4-byte loads each
  // dragging a 32-byte transaction.
  double overfetch() const;
};

// Analyze one half-warp (up to 16 lanes).  `lanes` beyond the half-warp size
// are ignored.
CoalesceResult analyze_half_warp(const DeviceSpec& spec, const MemAccess* lanes,
                                 int lane_count);

// Analyze a full warp as two independent half-warps (G80 issues memory
// per half-warp).
CoalesceResult analyze_warp(const DeviceSpec& spec, const WarpAccess& warp);

// Batch entry point: the same analysis over one SoA trace-arena row
// (uniform size by construction, addresses in a contiguous column).
// Produces exactly analyze_warp's numbers for the expanded warp.
CoalesceResult analyze_warp_soa(const DeviceSpec& spec,
                                const SoaWarpAccess& row);

}  // namespace g80
