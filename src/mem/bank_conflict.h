// Shared-memory bank-conflict analyzer.
//
// G80 shared memory has 16 banks, word-interleaved (bank = (addr/4) % 16).
// A half-warp's shared access completes in one cycle unless two or more
// lanes touch *different words* in the same bank, in which case the access
// serializes by the maximum per-bank degree.  All lanes reading the same
// word broadcast with no conflict (paper §5.2: "Care must be taken so that
// threads in the same warp access different banks").
#pragma once

#include "hw/device_spec.h"
#include "mem/access.h"

namespace g80 {

struct BankConflictResult {
  // Number of serialized passes for the half-warp (1 == conflict-free).
  int serialization = 1;
  bool broadcast = false;  // all active lanes hit one word
};

BankConflictResult analyze_shared_half_warp(const DeviceSpec& spec,
                                            const MemAccess* lanes,
                                            int lane_count);

// Full warp = two half-warps; returns the summed extra passes
// (total passes - number of half-warps that issued).
struct WarpBankCost {
  int passes = 0;        // total serialized passes across both half-warps
  int extra_passes = 0;  // passes beyond the conflict-free minimum
};

WarpBankCost analyze_shared_warp(const DeviceSpec& spec, const WarpAccess& warp);

// Batch entry point over one SoA trace-arena row: identical passes /
// extra_passes to analyze_shared_warp on the expanded warp, computed with a
// small insert-unique word array and a per-bank counter table instead of
// per-bank std::sets.
WarpBankCost analyze_shared_warp_soa(const DeviceSpec& spec,
                                     const SoaWarpAccess& row);

}  // namespace g80
