// Constant-memory model.
//
// G80 constant memory is a small cached read-only space whose cache serves a
// half-warp in one cycle *if all active lanes read the same address*
// (broadcast); distinct addresses serialize, one cache access per distinct
// address.  The MRI and CP kernels in the paper lean heavily on broadcast
// constant reads for their sample-parameter arrays.
#pragma once

#include "hw/device_spec.h"
#include "mem/access.h"

namespace g80 {

struct ConstAccessResult {
  int serialization = 1;  // distinct-address passes for the half-warp
  bool broadcast = false;
};

ConstAccessResult analyze_const_half_warp(const DeviceSpec& spec,
                                          const MemAccess* lanes, int lane_count);

struct WarpConstCost {
  int passes = 0;
  int extra_passes = 0;
};

WarpConstCost analyze_const_warp(const DeviceSpec& spec, const WarpAccess& warp);

// Batch entry point over one SoA trace-arena row: identical cost to
// analyze_const_warp on the expanded warp (distinct-address count via a
// 16-slot insert-unique array, no allocation).
WarpConstCost analyze_const_warp_soa(const DeviceSpec& spec,
                                     const SoaWarpAccess& row);

}  // namespace g80
