#include "mem/coalescing.h"

#include <algorithm>
#include <bit>
#include <set>

#include "common/error.h"

namespace g80 {

CoalesceResult& CoalesceResult::operator+=(const CoalesceResult& o) {
  transactions += o.transactions;
  dram_bytes += o.dram_bytes;
  scattered_bytes += o.scattered_bytes;
  useful_bytes += o.useful_bytes;
  coalesced = coalesced && o.coalesced;
  return *this;
}

double CoalesceResult::overfetch() const {
  return useful_bytes == 0 ? 1.0
                           : static_cast<double>(dram_bytes) /
                                 static_cast<double>(useful_bytes);
}

CoalesceResult analyze_half_warp(const DeviceSpec& spec, const MemAccess* lanes,
                                 int lane_count) {
  const int hw = spec.warp_size / 2;
  lane_count = std::min(lane_count, hw);

  CoalesceResult r;
  r.coalesced = true;

  // Gather active lanes and the access width (G80 requires a uniform width
  // within the half-warp; mixed widths serialize).
  int active = 0;
  std::uint32_t size = 0;
  bool uniform_size = true;
  for (int k = 0; k < lane_count; ++k) {
    if (!lanes[k].active) continue;
    ++active;
    if (size == 0) size = lanes[k].size;
    else if (lanes[k].size != size) uniform_size = false;
  }
  if (active == 0) return {};  // fully predicated-off: no traffic

  // Check the strict compute-1.0 pattern: lane k at base + k*size, base
  // aligned to the 16-word segment.
  bool pattern_ok = uniform_size && (size == 4 || size == 8 || size == 16);
  std::uint64_t base = 0;
  bool have_base = false;
  if (pattern_ok) {
    for (int k = 0; k < lane_count && pattern_ok; ++k) {
      if (!lanes[k].active) continue;
      const std::uint64_t lane_base =
          lanes[k].addr - static_cast<std::uint64_t>(k) * size;
      if (!have_base) {
        base = lane_base;
        have_base = true;
      } else if (lane_base != base) {
        pattern_ok = false;
      }
    }
    const std::uint64_t seg = static_cast<std::uint64_t>(hw) * size;
    if (pattern_ok && (base % seg) != 0) pattern_ok = false;
  }

  const std::uint64_t min_txn = spec.dram_transaction_bytes;
  if (pattern_ok) {
    r.transactions = 1;
    const std::uint64_t seg = static_cast<std::uint64_t>(hw) * size;
    r.dram_bytes = std::max<std::uint64_t>(seg, min_txn);
    r.useful_bytes = static_cast<std::uint64_t>(active) * size;
    r.coalesced = true;
    return r;
  }

  // Serialized.  Two separate costs:
  //  - COMMAND cost: one transaction per *active lane*.  Compute-1.0
  //    hardware issues every non-coalesced lane separately — neither
  //    adjacent-but-misaligned lanes (segment merging arrived later) nor
  //    same-address lanes combine (footnote 4 hedges with "may be able to";
  //    the measured behaviour, and the reason the suite moves broadcast
  //    reads into constant memory, is that they do not).  The timing model
  //    charges both the SM's memory port and the device-wide DRAM command
  //    rate per transaction.
  //  - BYTE cost: unique minimum-size DRAM segments touched (back-to-back
  //    requests into one open row are row-buffer hits, so the pins only pay
  //    per segment).  Charged at the scattered-efficiency bandwidth.
  r.coalesced = false;
  std::set<std::uint64_t> segments;
  for (int k = 0; k < lane_count; ++k) {
    if (!lanes[k].active) continue;
    ++r.transactions;
    for (std::uint64_t b = lanes[k].addr / min_txn;
         b <= (lanes[k].addr + lanes[k].size - 1) / min_txn; ++b)
      segments.insert(b);
    r.useful_bytes += lanes[k].size;
  }
  r.dram_bytes = static_cast<std::uint64_t>(segments.size()) * min_txn;
  r.scattered_bytes = r.dram_bytes;
  return r;
}

CoalesceResult analyze_warp(const DeviceSpec& spec, const WarpAccess& warp) {
  const int hw = spec.warp_size / 2;
  CoalesceResult total;
  total.coalesced = true;
  int issued = 0;
  for (std::size_t lo = 0; lo < warp.size(); lo += hw) {
    const int n = static_cast<int>(std::min<std::size_t>(hw, warp.size() - lo));
    CoalesceResult half = analyze_half_warp(spec, warp.data() + lo, n);
    if (half.transactions == 0) continue;
    total.transactions += half.transactions;
    total.dram_bytes += half.dram_bytes;
    total.scattered_bytes += half.scattered_bytes;
    total.useful_bytes += half.useful_bytes;
    total.coalesced = total.coalesced && half.coalesced;
    ++issued;
  }
  if (issued == 0) total.coalesced = false;
  return total;
}

namespace {

// SoA half-warp: lanes [lo, lo+n) of the batch row.  Same rule, same
// numbers as analyze_half_warp on the expanded AoS lanes — the uniform-size
// check is free (the batch key fixes the width) and the serialized path's
// unique-segment count uses a small insert-unique array instead of a
// std::set (identical distinct count, no allocation).
CoalesceResult analyze_half_warp_soa(const DeviceSpec& spec,
                                     const SoaWarpAccess& row, int lo, int n) {
  CoalesceResult r;
  const std::uint32_t half_mask =
      (n >= 32 ? ~0u : ((1u << n) - 1u)) & (row.mask >> lo);
  const int active = std::popcount(half_mask);
  if (active == 0) return r;  // fully predicated-off: no traffic
  const std::uint32_t size = row.size;
  const std::uint64_t* addr = row.addrs + lo;

  // Strict compute-1.0 pattern: lane k at base + k*size, base aligned to the
  // 16-word segment.
  bool pattern_ok = size == 4 || size == 8 || size == 16;
  std::uint64_t base = 0;
  bool have_base = false;
  if (pattern_ok) {
    for (int k = 0; k < n && pattern_ok; ++k) {
      if ((half_mask >> k & 1u) == 0) continue;
      const std::uint64_t lane_base =
          addr[k] - static_cast<std::uint64_t>(k) * size;
      if (!have_base) {
        base = lane_base;
        have_base = true;
      } else if (lane_base != base) {
        pattern_ok = false;
      }
    }
    const std::uint64_t seg =
        static_cast<std::uint64_t>(spec.warp_size / 2) * size;
    if (pattern_ok && (base % seg) != 0) pattern_ok = false;
  }

  const std::uint64_t min_txn = spec.dram_transaction_bytes;
  if (pattern_ok) {
    r.transactions = 1;
    const std::uint64_t seg =
        static_cast<std::uint64_t>(spec.warp_size / 2) * size;
    r.dram_bytes = std::max<std::uint64_t>(seg, min_txn);
    r.useful_bytes = static_cast<std::uint64_t>(active) * size;
    r.coalesced = true;
    return r;
  }

  r.coalesced = false;
  r.transactions = active;
  r.useful_bytes = static_cast<std::uint64_t>(active) * size;
  std::uint64_t segs[64];
  int nsegs = 0;
  bool overflow = false;
  for (int k = 0; k < n && !overflow; ++k) {
    if ((half_mask >> k & 1u) == 0) continue;
    for (std::uint64_t b = addr[k] / min_txn;
         b <= (addr[k] + size - 1) / min_txn; ++b) {
      int i = 0;
      while (i < nsegs && segs[i] != b) ++i;
      if (i == nsegs) {
        if (nsegs == 64) {
          overflow = true;
          break;
        }
        segs[nsegs++] = b;
      }
    }
  }
  if (overflow) {
    // Giant access widths (> a cache line per lane): fall back to the exact
    // set-based count rather than growing the scratch array.
    std::set<std::uint64_t> segments;
    for (int k = 0; k < n; ++k) {
      if ((half_mask >> k & 1u) == 0) continue;
      for (std::uint64_t b = addr[k] / min_txn;
           b <= (addr[k] + size - 1) / min_txn; ++b)
        segments.insert(b);
    }
    nsegs = static_cast<int>(segments.size());
  }
  r.dram_bytes = static_cast<std::uint64_t>(nsegs) * min_txn;
  r.scattered_bytes = r.dram_bytes;
  return r;
}

}  // namespace

CoalesceResult analyze_warp_soa(const DeviceSpec& spec,
                                const SoaWarpAccess& row) {
  const int hw = spec.warp_size / 2;
  CoalesceResult total;
  total.coalesced = true;
  int issued = 0;
  for (int lo = 0; lo < row.lanes; lo += hw) {
    const int n = std::min(hw, row.lanes - lo);
    CoalesceResult half = analyze_half_warp_soa(spec, row, lo, n);
    if (half.transactions == 0) continue;
    total.transactions += half.transactions;
    total.dram_bytes += half.dram_bytes;
    total.scattered_bytes += half.scattered_bytes;
    total.useful_bytes += half.useful_bytes;
    total.coalesced = total.coalesced && half.coalesced;
    ++issued;
  }
  if (issued == 0) total.coalesced = false;
  return total;
}

}  // namespace g80
