#include "mem/bank_conflict.h"

#include <algorithm>
#include <set>
#include <vector>

namespace g80 {

BankConflictResult analyze_shared_half_warp(const DeviceSpec& spec,
                                            const MemAccess* lanes,
                                            int lane_count) {
  const int hw = spec.warp_size / 2;
  lane_count = std::min(lane_count, hw);
  const int banks = spec.shared_mem_banks;

  // Distinct words touched per bank.
  std::vector<std::set<std::uint64_t>> words(static_cast<std::size_t>(banks));
  std::set<std::uint64_t> all_words;
  int active = 0;
  for (int k = 0; k < lane_count; ++k) {
    if (!lanes[k].active) continue;
    ++active;
    // Multi-word accesses (e.g. float2/float4) touch consecutive banks.
    for (std::uint32_t off = 0; off < lanes[k].size; off += 4) {
      const std::uint64_t word = (lanes[k].addr + off) / 4;
      words[word % banks].insert(word);
      all_words.insert(word);
    }
  }

  BankConflictResult r;
  if (active == 0) return r;
  if (all_words.size() == 1) {
    r.broadcast = true;
    r.serialization = 1;
    return r;
  }
  int worst = 1;
  for (const auto& w : words)
    worst = std::max(worst, static_cast<int>(w.size()));
  r.serialization = worst;
  return r;
}

WarpBankCost analyze_shared_warp(const DeviceSpec& spec, const WarpAccess& warp) {
  const int hw = spec.warp_size / 2;
  WarpBankCost cost;
  for (std::size_t lo = 0; lo < warp.size(); lo += hw) {
    const int n = static_cast<int>(std::min<std::size_t>(hw, warp.size() - lo));
    bool any_active = false;
    for (int k = 0; k < n; ++k) any_active |= warp[lo + k].active;
    if (!any_active) continue;
    const auto half = analyze_shared_half_warp(spec, warp.data() + lo, n);
    cost.passes += half.serialization;
    cost.extra_passes += half.serialization - 1;
  }
  return cost;
}

namespace {

// Serialization degree of one SoA half-warp: distinct words via a small
// insert-unique array (<= 16 lanes x size/4 words in practice), then the
// worst per-bank degree from a counter table — each distinct word lands in
// exactly one bank, so counting distinct words per bank equals the legacy
// per-bank set sizes.
int half_warp_serialization_soa(const DeviceSpec& spec,
                                const SoaWarpAccess& row, int lo, int n) {
  const std::uint32_t half_mask =
      (n >= 32 ? ~0u : ((1u << n) - 1u)) & (row.mask >> lo);
  if (half_mask == 0) return 0;  // nothing issued
  const int banks = spec.shared_mem_banks;
  const std::uint64_t* addr = row.addrs + lo;

  std::uint64_t words[128];
  int nwords = 0;
  bool overflow = banks > 64;  // counter table bound; G80 has 16 banks
  for (int k = 0; k < n && !overflow; ++k) {
    if ((half_mask >> k & 1u) == 0) continue;
    for (std::uint32_t off = 0; off < row.size; off += 4) {
      const std::uint64_t word = (addr[k] + off) / 4;
      int i = 0;
      while (i < nwords && words[i] != word) ++i;
      if (i == nwords) {
        if (nwords == 128) {
          overflow = true;
          break;
        }
        words[nwords++] = word;
      }
    }
  }
  if (overflow) {
    // Unusually wide accesses: exact fallback through the legacy sets.
    std::vector<std::set<std::uint64_t>> per_bank(
        static_cast<std::size_t>(banks));
    std::set<std::uint64_t> all;
    for (int k = 0; k < n; ++k) {
      if ((half_mask >> k & 1u) == 0) continue;
      for (std::uint32_t off = 0; off < row.size; off += 4) {
        const std::uint64_t word = (addr[k] + off) / 4;
        per_bank[word % banks].insert(word);
        all.insert(word);
      }
    }
    if (all.size() == 1) return 1;
    int worst = 1;
    for (const auto& w : per_bank)
      worst = std::max(worst, static_cast<int>(w.size()));
    return worst;
  }

  if (nwords == 1) return 1;  // broadcast
  int counts[64] = {};
  for (int i = 0; i < nwords; ++i) ++counts[words[i] % banks];
  int worst = 1;
  for (int b = 0; b < banks; ++b) worst = std::max(worst, counts[b]);
  return worst;
}

}  // namespace

WarpBankCost analyze_shared_warp_soa(const DeviceSpec& spec,
                                     const SoaWarpAccess& row) {
  const int hw = spec.warp_size / 2;
  WarpBankCost cost;
  for (int lo = 0; lo < row.lanes; lo += hw) {
    const int n = std::min(hw, row.lanes - lo);
    const int ser = half_warp_serialization_soa(spec, row, lo, n);
    if (ser == 0) continue;  // no active lane in this half
    cost.passes += ser;
    cost.extra_passes += ser - 1;
  }
  return cost;
}

}  // namespace g80
