#include "mem/bank_conflict.h"

#include <algorithm>
#include <set>
#include <vector>

namespace g80 {

BankConflictResult analyze_shared_half_warp(const DeviceSpec& spec,
                                            const MemAccess* lanes,
                                            int lane_count) {
  const int hw = spec.warp_size / 2;
  lane_count = std::min(lane_count, hw);
  const int banks = spec.shared_mem_banks;

  // Distinct words touched per bank.
  std::vector<std::set<std::uint64_t>> words(static_cast<std::size_t>(banks));
  std::set<std::uint64_t> all_words;
  int active = 0;
  for (int k = 0; k < lane_count; ++k) {
    if (!lanes[k].active) continue;
    ++active;
    // Multi-word accesses (e.g. float2/float4) touch consecutive banks.
    for (std::uint32_t off = 0; off < lanes[k].size; off += 4) {
      const std::uint64_t word = (lanes[k].addr + off) / 4;
      words[word % banks].insert(word);
      all_words.insert(word);
    }
  }

  BankConflictResult r;
  if (active == 0) return r;
  if (all_words.size() == 1) {
    r.broadcast = true;
    r.serialization = 1;
    return r;
  }
  int worst = 1;
  for (const auto& w : words)
    worst = std::max(worst, static_cast<int>(w.size()));
  r.serialization = worst;
  return r;
}

WarpBankCost analyze_shared_warp(const DeviceSpec& spec, const WarpAccess& warp) {
  const int hw = spec.warp_size / 2;
  WarpBankCost cost;
  for (std::size_t lo = 0; lo < warp.size(); lo += hw) {
    const int n = static_cast<int>(std::min<std::size_t>(hw, warp.size() - lo));
    bool any_active = false;
    for (int k = 0; k < n; ++k) any_active |= warp[lo + k].active;
    if (!any_active) continue;
    const auto half = analyze_shared_half_warp(spec, warp.data() + lo, n);
    cost.passes += half.serialization;
    cost.extra_passes += half.serialization - 1;
  }
  return cost;
}

}  // namespace g80
