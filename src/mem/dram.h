// DRAM service model: converts transaction counts and byte totals into
// cycles, and provides the bandwidth floor the paper uses ("bandwidth can
// saturate if many threads request access within a short period of time").
//
// Coalesced (16-word-line) traffic streams near peak efficiency; scattered
// transactions pay DRAM row misses and achieve a much lower fraction of the
// 86.4 GB/s — this is the mechanism behind the paper's insistence on
// "contiguous 16-word lines; in other cases the achievable bandwidth is a
// fraction of the maximum" (§3.2).
#pragma once

#include <cstdint>

#include "hw/device_spec.h"

namespace g80 {

struct DramTraffic {
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;            // all bytes moved over the pins
  std::uint64_t scattered_bytes = 0;  // subset from uncoalesced accesses

  std::uint64_t coalesced_bytes() const { return bytes - scattered_bytes; }

  bool operator==(const DramTraffic&) const = default;

  DramTraffic& operator+=(const DramTraffic& o) {
    transactions += o.transactions;
    bytes += o.bytes;
    scattered_bytes += o.scattered_bytes;
    return *this;
  }
};

class DramModel {
 public:
  explicit DramModel(const DeviceSpec& spec) : spec_(spec) {}

  // Minimum core cycles to move `traffic`: the larger of the byte cost
  // (coalesced and scattered bytes at their respective effective bandwidths)
  // and the command cost (transactions through the partitions' command
  // rate — what fragmented same-row streams pay).
  double bandwidth_cycles(const DramTraffic& traffic) const;

  // Average cycles between consecutive transaction completions when the
  // memory system is saturated (the Hong/Kim "departure delay").
  double departure_delay_cycles() const;

  // Effective sustained bandwidths in GB/s.
  double effective_bandwidth_gbs() const;            // coalesced streams
  double effective_scattered_bandwidth_gbs() const;  // random 32 B requests

 private:
  const DeviceSpec& spec_;
};

}  // namespace g80
