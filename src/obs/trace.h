// g80obs request span tracing.
//
// Every g80serve request carries one RequestTrace from the byte it arrives
// to the byte its response leaves: named spans cover each pipeline phase
// (parse, cache lookup, admission, queue wait, scheduler slot, simulation,
// cache store, response write) and instant events mark the g80resil attempt
// machinery (one event per attempt / retry / device reset).  Timestamps are
// seconds on the steady clock, relative to the trace's own start, so a
// trace is self-contained and host-clock jumps cannot skew it.
//
// A trace is shared between the session thread (parse, cache, respond on
// the hit path) and the scheduler worker that runs the job (queue close,
// simulate, attempts), so RequestTrace is internally locked.  That is fine
// cost-wise: tracing is per-request, not per-instruction, and the daemon
// disables it entirely by setting the ring capacity to zero (the null-trace
// fast path is one pointer test).
//
// Finished traces fold into two places:
//   - per-phase LatencyHistograms in the metrics registry (the server does
//     this in finish_request_trace), and
//   - a daemon-wide TraceRing of the most recent N TraceRecords, exported
//     by the `traces` protocol op and convertible to chrome://tracing JSON
//     (obs/export.h) so a serve trace opens in the same viewer as a g80prof
//     kernel timeline.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace g80::obs {

// One closed-or-open span.  end_s < 0 means still open.
struct Span {
  std::string name;
  double start_s = 0;
  double end_s = -1;
  std::string note;  // status token, cache tier, ... (optional)

  bool closed() const { return end_s >= 0; }
  double seconds() const { return closed() ? end_s - start_s : 0; }
};

// Instant event (resil attempt start/failure, device reset, ...).
struct SpanEvent {
  std::string name;
  double t_s = 0;
  std::string note;
};

// Value-type record of one finished request trace; what the ring stores and
// the `traces` op exports.
struct TraceRecord {
  std::uint64_t session = 0;
  std::int64_t request_id = 0;
  std::string op;
  std::string status;  // protocol status token of the response
  double start_s = 0;  // steady-clock seconds at trace start (daemon-relative)
  double total_s = 0;
  bool complete = false;  // every span closed, starts monotonically ordered
  std::vector<Span> spans;
  std::vector<SpanEvent> events;
};

class RequestTrace {
 public:
  RequestTrace(std::uint64_t session, double epoch_s);

  // Identity is known only after the parse span: set it once parsed.
  void set_identity(std::string op, std::int64_t request_id);

  // Opens a span and returns its index (stable for close()).
  int open(std::string name);
  void close(int idx, std::string note = "");
  // Closes every still-open span with `note` (error unwinding paths).
  void close_all(std::string note);
  void event(std::string name, std::string note = "");

  double elapsed_s() const;

  // Freezes the trace into a record.  `status` is the response's protocol
  // status token.  Completeness = at least one span, all spans closed, and
  // span starts monotonically non-decreasing (the ordered-span-tree
  // property the lifecycle test asserts).
  TraceRecord finish(std::string status);

 private:
  double now_rel() const;

  const std::uint64_t session_;
  const double epoch_s_;    // daemon steady-clock origin of this trace
  mutable std::mutex mu_;
  std::string op_;
  std::int64_t request_id_ = 0;
  std::vector<Span> spans_;
  std::vector<SpanEvent> events_;
};

// Fixed-capacity ring of the most recent finished traces.  capacity 0 =
// tracing disabled (the server then never allocates a RequestTrace at all).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  void add(TraceRecord rec);
  std::vector<TraceRecord> snapshot() const;
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceRecord> ring_;  // oldest at front
};

// Steady-clock seconds since an arbitrary process-wide origin; the shared
// timebase for every trace of one daemon, so ring records order correctly.
double steady_seconds();

// Serializes records as the `traces` protocol op's result payload:
//   {"traces":[{"session":..,"id":..,"op":..,"status":..,"start_s":..,
//               "total_s":..,"complete":..,
//               "spans":[{"name":..,"start_s":..,"end_s":..,"note":..}],
//               "events":[{"name":..,"t_s":..,"note":..}]},...]}
std::string traces_json(const std::vector<TraceRecord>& recs);

}  // namespace g80::obs
