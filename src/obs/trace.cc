#include "obs/trace.h"

#include <chrono>
#include <utility>

#include "common/json.h"

namespace g80::obs {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RequestTrace::RequestTrace(std::uint64_t session, double epoch_s)
    : session_(session), epoch_s_(epoch_s) {}

void RequestTrace::set_identity(std::string op, std::int64_t request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  op_ = std::move(op);
  request_id_ = request_id;
}

double RequestTrace::now_rel() const { return steady_seconds() - epoch_s_; }

int RequestTrace::open(std::string name) {
  const double t = now_rel();
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{std::move(name), t, -1, ""});
  return static_cast<int>(spans_.size()) - 1;
}

void RequestTrace::close(int idx, std::string note) {
  const double t = now_rel();
  std::lock_guard<std::mutex> lock(mu_);
  if (idx < 0 || idx >= static_cast<int>(spans_.size())) return;
  Span& s = spans_[static_cast<std::size_t>(idx)];
  if (s.closed()) return;  // first close wins
  s.end_s = t;
  s.note = std::move(note);
}

void RequestTrace::close_all(std::string note) {
  const double t = now_rel();
  std::lock_guard<std::mutex> lock(mu_);
  for (Span& s : spans_) {
    if (!s.closed()) {
      s.end_s = t;
      s.note = note;
    }
  }
}

void RequestTrace::event(std::string name, std::string note) {
  const double t = now_rel();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(SpanEvent{std::move(name), t, std::move(note)});
}

double RequestTrace::elapsed_s() const { return now_rel(); }

TraceRecord RequestTrace::finish(std::string status) {
  const double total = now_rel();
  std::lock_guard<std::mutex> lock(mu_);
  TraceRecord rec;
  rec.session = session_;
  rec.request_id = request_id_;
  rec.op = op_;
  rec.status = std::move(status);
  rec.start_s = epoch_s_;
  rec.total_s = total;
  rec.spans = spans_;
  rec.events = events_;
  rec.complete = !rec.spans.empty();
  double prev_start = 0;
  for (const Span& s : rec.spans) {
    if (!s.closed() || s.start_s < prev_start) {
      rec.complete = false;
      break;
    }
    prev_start = s.start_s;
  }
  return rec;
}

void TraceRing::add(TraceRecord rec) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(rec));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceRecord>(ring_.begin(), ring_.end());
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string traces_json(const std::vector<TraceRecord>& recs) {
  JsonWriter w;
  w.begin_object();
  w.key("traces");
  w.begin_array();
  for (const TraceRecord& r : recs) {
    w.begin_object();
    w.kv("session", r.session);
    w.kv("id", static_cast<std::uint64_t>(r.request_id));
    w.kv("op", r.op);
    w.kv("status", r.status);
    w.kv("start_s", r.start_s);
    w.kv("total_s", r.total_s);
    w.kv("complete", r.complete);
    w.key("spans");
    w.begin_array();
    for (const Span& s : r.spans) {
      w.begin_object();
      w.kv("name", s.name);
      w.kv("start_s", s.start_s);
      w.kv("end_s", s.end_s);
      if (!s.note.empty()) w.kv("note", s.note);
      w.end_object();
    }
    w.end_array();
    w.key("events");
    w.begin_array();
    for (const SpanEvent& e : r.events) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("t_s", e.t_s);
      if (!e.note.empty()) w.kv("note", e.note);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace g80::obs
