#include "obs/log.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>

#include "common/error.h"
#include "common/json.h"
#include "common/str.h"

namespace g80::obs {

namespace {

// Wall-clock seconds since the unix epoch with millisecond precision, plus
// the ISO-8601 rendering text mode uses.
double wall_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string iso8601(double unix_s) {
  const auto secs = static_cast<std::time_t>(unix_s);
  const int millis =
      static_cast<int>((unix_s - static_cast<double>(secs)) * 1e3);
  std::tm tm{};
  ::gmtime_r(&secs, &tm);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  return buf;
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

}  // namespace

std::string_view log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogLevel log_level_from_name(std::string_view name) {
  for (const LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    if (name == log_level_name(l)) return l;
  }
  throw Error(cat("g80obs: unknown log level \"", name,
                  "\" (debug|info|warn|error|off)"));
}

Logger::Logger(LogLevel min_level, bool json)
    : min_level_(min_level), json_(json) {
  sink_ = [](std::string_view line) {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  };
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

Logger::Event::Event(Logger* logger, LogLevel level, std::string_view event)
    : logger_(logger), level_(level), event_(event) {}

Logger::Event::~Event() {
  if (logger_ != nullptr) logger_->emit(*this);
}

Logger::Event& Logger::Event::field(std::string_view key,
                                    std::string_view v) {
  if (logger_ != nullptr) {
    fields_.push_back({std::string(key), std::string(v), true});
  }
  return *this;
}

Logger::Event& Logger::Event::field(std::string_view key, std::uint64_t v) {
  if (logger_ != nullptr) {
    fields_.push_back({std::string(key), std::to_string(v), false});
  }
  return *this;
}

Logger::Event& Logger::Event::field(std::string_view key, std::int64_t v) {
  if (logger_ != nullptr) {
    fields_.push_back({std::string(key), std::to_string(v), false});
  }
  return *this;
}

Logger::Event& Logger::Event::field(std::string_view key, double v) {
  if (logger_ != nullptr) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields_.push_back({std::string(key), buf, false});
  }
  return *this;
}

Logger::Event& Logger::Event::field(std::string_view key, bool v) {
  if (logger_ != nullptr) {
    fields_.push_back({std::string(key), v ? "true" : "false", false});
  }
  return *this;
}

Logger::Event Logger::log(LogLevel level, std::string_view event) {
  return Event(enabled(level) ? this : nullptr, level, event);
}

void Logger::emit(const Event& ev) {
  const double now = wall_seconds();
  std::string line;
  if (json_) {
    char ts[40];
    std::snprintf(ts, sizeof ts, "%.3f", now);
    line = cat("{\"ts\":", ts, ",\"level\":\"", log_level_name(ev.level_),
               "\",\"event\":\"", json_escape(ev.event_), "\"");
    for (const Event::Field& f : ev.fields_) {
      line += cat(",\"", json_escape(f.key), "\":");
      if (f.is_string) {
        line += cat("\"", json_escape(f.value), "\"");
      } else {
        line += f.value;
      }
    }
    line += "}";
  } else {
    line = cat(iso8601(now), " ",
               pad_right(std::string(log_level_name(ev.level_)), 5), " ",
               ev.event_);
    for (const Event::Field& f : ev.fields_) {
      if (f.is_string && needs_quoting(f.value)) {
        line += cat(" ", f.key, "=\"", json_escape(f.value), "\"");
      } else {
        line += cat(" ", f.key, "=", f.value);
      }
    }
  }
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_) sink_(line);
}

}  // namespace g80::obs
