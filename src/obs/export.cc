#include "obs/export.h"

#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/str.h"
#include "prof/chrome_trace.h"

namespace g80::obs {

namespace {

// "serve.requests_total" -> "g80_serve_requests_total".  Prometheus metric
// names are [a-zA-Z_:][a-zA-Z0-9_:]*; everything else maps to '_'.
std::string prom_name(std::string_view raw) {
  std::string out = "g80_";
  out.reserve(raw.size() + 4);
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

std::string prometheus_text(const JsonValue& metrics_result) {
  const JsonValue& arr = metrics_result.require("metrics");
  if (!arr.is_array()) throw Error("g80obs: \"metrics\" is not an array");
  std::string out;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& m = arr.at(i);
    const std::string name = prom_name(m.require("name").as_string());
    const std::string& kind = m.require("kind").as_string();
    if (kind == "counter" || kind == "gauge") {
      out += cat("# TYPE ", name, " ", kind, "\n", name, " ",
                 fmt_num(m.require("value").as_number()), "\n");
    } else if (kind == "histogram") {
      out += cat("# TYPE ", name, " histogram\n");
      const JsonValue& buckets = m.require("buckets");
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        const JsonValue& pair = buckets.at(b);
        const JsonValue& le = pair.at(0);
        // JSON has no +inf: the open-ended last bucket's bound arrives as
        // null and renders as the spec's le="+Inf".
        const std::string le_str =
            le.is_null() ? std::string("+Inf") : fmt_num(le.as_number());
        out += cat(name, "_bucket{le=\"", le_str, "\"} ",
                   std::to_string(pair.at(1).as_int()), "\n");
      }
      out += cat(name, "_sum ", fmt_num(m.require("sum").as_number()), "\n",
                 name, "_count ", std::to_string(m.require("count").as_int()),
                 "\n");
    } else {
      throw Error(cat("g80obs: unknown metric kind \"", kind, "\""));
    }
  }
  return out;
}

std::string chrome_trace_from_traces(const JsonValue& traces_result) {
  const JsonValue& arr = traces_result.require("traces");
  if (!arr.is_array()) throw Error("g80obs: \"traces\" is not an array");
  constexpr int kPid = 1;
  JsonWriter w;
  w.begin_object().kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  prof::chrome_emit_process_name(w, kPid, "g80served (requests)");
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& t = arr.at(i);
    // One track per request: requests pipeline concurrently on a session,
    // so a shared track would interleave unrelated spans.
    const int tid = static_cast<int>(i) + 1;
    const double base_s = t.require("start_s").as_number();
    prof::chrome_emit_thread_name(
        w, kPid, tid,
        cat("req ", std::to_string(t.require("id").as_int()), " (session ",
            std::to_string(t.require("session").as_int()), ")"));
    // Root slice spanning the whole request, phase spans nested inside.
    prof::chrome_emit_slice(
        w, kPid, tid,
        cat(t.require("op").as_string(), " [", t.require("status").as_string(),
            "]"),
        base_s, t.require("total_s").as_number(), [&](JsonWriter& args) {
          args.kv("complete", t.require("complete").as_bool());
        });
    const JsonValue& spans = t.require("spans");
    for (std::size_t s = 0; s < spans.size(); ++s) {
      const JsonValue& sp = spans.at(s);
      const double start = sp.require("start_s").as_number();
      const double end = sp.require("end_s").as_number();
      const std::string note = sp.get_string("note", "");
      prof::chrome_emit_slice(
          w, kPid, tid, sp.require("name").as_string(), base_s + start,
          end >= start ? end - start : 0,
          note.empty() ? std::function<void(JsonWriter&)>()
                       : [&](JsonWriter& args) { args.kv("note", note); });
    }
    const JsonValue& events = t.require("events");
    for (std::size_t e = 0; e < events.size(); ++e) {
      const JsonValue& ev = events.at(e);
      const std::string note = ev.get_string("note", "");
      prof::chrome_emit_instant(
          w, kPid, tid, ev.require("name").as_string(),
          base_s + ev.require("t_s").as_number(),
          note.empty() ? std::function<void(JsonWriter&)>()
                       : [&](JsonWriter& args) { args.kv("note", note); });
    }
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace g80::obs
