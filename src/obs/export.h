// g80obs exporters: render the `metrics` and `traces` protocol-op payloads
// into the two external formats monitoring actually consumes.
//
// Both functions take the *parsed JSON payload* the daemon returns, not live
// registry objects, so they run wherever the payload lands: inside
// g80servectl (`metrics` / `traces` subcommands), in tests, or in any tool
// that talks the wire protocol.  The daemon itself only ever serializes the
// neutral JSON (obs/metrics.h metrics_json, obs/trace.h traces_json).
//
//   - prometheus_text: Prometheus exposition format.  Registry names are
//     dotted ("serve.requests_total"); exported names are "g80_" + name with
//     every non-[a-zA-Z0-9_] byte mapped to '_', so "serve.requests_total"
//     becomes g80_serve_requests_total.  Histograms expand to the standard
//     _bucket{le="..."} / _sum / _count triple; the open-ended last bucket's
//     null upper bound (JSON has no +inf) renders as le="+Inf".
//   - chrome_trace_from_traces: Chrome trace-event JSON, same dialect as
//     g80prof's kernel-timeline exporter (built on the shared emitters in
//     prof/chrome_trace.h), so a serve trace and a modeled kernel timeline
//     open side by side in the same viewer.  Each request becomes its own
//     named track ("req <id> (session <s>)") — requests pipeline on one
//     session, so per-request tracks keep overlapping spans from mis-nesting.
#pragma once

#include <string>

#include "common/json.h"

namespace g80::obs {

// `metrics_result` is the parsed {"metrics":[...]} object of the `metrics`
// op's result payload.  Throws g80::Error on a malformed payload.
std::string prometheus_text(const JsonValue& metrics_result);

// `traces_result` is the parsed {"traces":[...]} object of the `traces` op's
// result payload.  Throws g80::Error on a malformed payload.
std::string chrome_trace_from_traces(const JsonValue& traces_result);

}  // namespace g80::obs
