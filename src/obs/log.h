// g80obs structured event logger.
//
// Replaces the daemon's ad-hoc fprintf(stderr, ...) with leveled, structured
// one-line events that a log pipeline can parse:
//
//   text mode:  2026-08-09T12:00:01.234Z INFO  session_accepted session=3
//   json mode:  {"ts":1754745601.234,"level":"info","event":"session_accepted",
//                "session":3}
//
// An event is a name plus ordered key/value fields (strings, integers,
// doubles, bools).  Field order is preserved; values are JSON-escaped in
// json mode and quoted-when-needed in text mode.  Levels below the
// configured minimum are dropped before any field formatting happens, so a
// disabled debug() costs one comparison.
//
// Emission goes through a sink callback (one fully formatted line, no
// trailing newline).  The default sink writes to stderr under a mutex; tests
// install a capturing sink.  The Logger itself is thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <string>
#include <string_view>
#include <vector>

namespace g80::obs {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

std::string_view log_level_name(LogLevel l);
// Accepts "debug" | "info" | "warn" | "error" | "off"; throws g80::Error on
// anything else (the daemon's --log-level flag parser).
LogLevel log_level_from_name(std::string_view name);

class Logger {
 public:
  using Sink = std::function<void(std::string_view line)>;

  // Default sink: one line to stderr.
  explicit Logger(LogLevel min_level = LogLevel::kInfo, bool json = false);

  void set_level(LogLevel l) { min_level_ = l; }
  void set_json(bool json) { json_ = json; }
  void set_sink(Sink sink);
  LogLevel level() const { return min_level_; }
  bool json() const { return json_; }

  bool enabled(LogLevel l) const { return l >= min_level_; }

  // Builder for one event; emits on destruction.  Usage:
  //   log.info("job_done").field("session", id).field("status", "ok");
  class Event {
   public:
    Event(Event&& o) noexcept
        : logger_(o.logger_),
          level_(o.level_),
          event_(std::move(o.event_)),
          fields_(std::move(o.fields_)) {
      o.logger_ = nullptr;  // the moved-from event must not emit
    }
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    ~Event();

    Event& field(std::string_view key, std::string_view v);
    Event& field(std::string_view key, const char* v) {
      return field(key, std::string_view(v));
    }
    Event& field(std::string_view key, const std::string& v) {
      return field(key, std::string_view(v));
    }
    Event& field(std::string_view key, std::uint64_t v);
    Event& field(std::string_view key, std::int64_t v);
    Event& field(std::string_view key, int v) {
      return field(key, static_cast<std::int64_t>(v));
    }
    Event& field(std::string_view key, double v);
    Event& field(std::string_view key, bool v);

   private:
    friend class Logger;
    Event(Logger* logger, LogLevel level, std::string_view event);

    struct Field {
      std::string key;
      std::string value;   // pre-rendered (JSON-compatible for non-strings)
      bool is_string;      // needs quoting/escaping on emit
    };
    Logger* logger_;  // null = suppressed (below min level or moved-from)
    LogLevel level_ = LogLevel::kInfo;
    std::string event_;
    std::vector<Field> fields_;
  };

  Event log(LogLevel level, std::string_view event);
  Event debug(std::string_view event) { return log(LogLevel::kDebug, event); }
  Event info(std::string_view event) { return log(LogLevel::kInfo, event); }
  Event warn(std::string_view event) { return log(LogLevel::kWarn, event); }
  Event error(std::string_view event) { return log(LogLevel::kError, event); }

 private:
  void emit(const Event& ev);

  LogLevel min_level_;
  bool json_;
  std::mutex sink_mu_;
  Sink sink_;
};

}  // namespace g80::obs
