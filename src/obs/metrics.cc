#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"
#include "common/json.h"
#include "common/str.h"

namespace g80::obs {

namespace detail {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

LatencyHistogram::LatencyHistogram(LogBuckets layout)
    : layout_(layout), counts_(layout.buckets()) {}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  return layout_.quantile(counts.data(), counts.size(), q);
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nano_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(const std::string& name,
                                                     MetricKind kind) {
  for (auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw Error(cat("g80obs: metric \"", name,
                        "\" already registered with a different kind"));
      }
      return e.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_locked(name, MetricKind::kCounter)) {
    return e->counter.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kCounter;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_locked(name, MetricKind::kGauge)) {
    if (!e->gauge) {
      throw Error(cat("g80obs: gauge \"", name,
                      "\" is callback-backed; no settable handle"));
    }
    return e->gauge.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kGauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name,
                                             LogBuckets layout) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_locked(name, MetricKind::kHistogram)) {
    return e->hist.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kHistogram;
  e->hist = std::make_unique<LatencyHistogram>(layout);
  LatencyHistogram* out = e->hist.get();
  entries_.push_back(std::move(e));
  return out;
}

void MetricsRegistry::gauge_callback(const std::string& name,
                                     std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (find_locked(name, MetricKind::kGauge) != nullptr) {
    throw Error(cat("g80obs: gauge \"", name, "\" already registered"));
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kGauge;
  e->callback = std::move(fn);
  entries_.push_back(std::move(e));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e->counter->value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(e->gauge ? e->gauge->value()
                                               : e->callback());
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram& h = *e->hist;
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        s.count = h.count();
        s.value = static_cast<double>(s.count);
        s.sum = h.sum();
        s.p50 = h.layout().quantile(counts.data(), counts.size(), 0.50);
        s.p90 = h.layout().quantile(counts.data(), counts.size(), 0.90);
        s.p99 = h.layout().quantile(counts.data(), counts.size(), 0.99);
        std::uint64_t cum = 0;
        s.buckets.reserve(counts.size());
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cum += counts[i];
          s.buckets.emplace_back(h.layout().upper_bound(i), cum);
        }
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->counter) e->counter->reset();
    if (e->hist) e->hist->reset();
  }
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value(std::string_view name) const {
  const MetricSample* s = find(name);
  return s != nullptr ? s->value : 0.0;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.key("metrics");
  w.begin_array();
  for (const MetricSample& s : snap.samples) {
    w.begin_object();
    w.kv("name", s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        w.kv("kind", "counter");
        w.kv("value", s.value);
        break;
      case MetricKind::kGauge:
        w.kv("kind", "gauge");
        w.kv("value", s.value);
        break;
      case MetricKind::kHistogram:
        w.kv("kind", "histogram");
        w.kv("count", s.count);
        w.kv("sum", s.sum);
        w.kv("p50", s.p50);
        w.kv("p90", s.p90);
        w.kv("p99", s.p99);
        w.key("buckets");
        w.begin_array();
        for (const auto& [le, cum] : s.buckets) {
          w.begin_array();
          w.value(le);
          w.value(cum);
          w.end_array();
        }
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace g80::obs
