// g80obs metrics registry: named counters, gauges, and log-bucketed latency
// histograms for the serving stack, following the paper's measurement-first
// discipline (§4/§5 back every claim with counters) at the request layer.
//
// Design constraints, in order:
//   1. The *update* path must be lock-cheap: a counter increment or a
//      histogram observation is one relaxed atomic RMW on a per-thread
//      shard — no mutex, no allocation, no syscall — so instrumenting the
//      daemon's hot request path costs nanoseconds whether or not anyone
//      ever scrapes.  (bench/obs_overhead gates this end to end.)
//   2. The *scrape* path (snapshot()) may be arbitrarily slow: it walks all
//      shards, sums them, and samples callback gauges under the registry
//      mutex.  Scrapes are rare (a monitoring poll), updates are not.
//   3. Scrapes never reset: counters and histograms are cumulative, in the
//      Prometheus style, so concurrent scrapers see consistent monotonic
//      series and a missed scrape loses nothing.  reset() exists for tests
//      and zeroes counters/histograms (callback gauges re-sample, set
//      gauges keep their last value — they are instantaneous, not
//      cumulative).
//
// Handle lifetime: counter()/gauge()/histogram() return stable pointers
// owned by the registry (same name => same handle), valid until the
// registry is destroyed.  Handles are safe to use from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace g80::obs {

// Shard count for counters and histogram bucket rows.  Each thread hashes
// to one shard (round-robin at first touch), so concurrent writers mostly
// touch distinct cache lines.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
// One cache line per shard so two hot threads never false-share.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
// This thread's shard index (assigned round-robin on first use).
std::size_t this_thread_shard();
}  // namespace detail

// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shards_[detail::this_thread_shard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 shards_[kMetricShards];
};

// Instantaneous signed value (queue depth, bytes outstanding).  set() is a
// plain store, add() an RMW; both relaxed — gauges are sampled, not summed.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Log-bucketed histogram for latency-like quantities spanning orders of
// magnitude.  Bucket layout comes from common/stats.h's LogBuckets
// (generalizing the fixed-range Histogram there); counts are relaxed
// atomics, the sum accumulates in integer nanounits so observe() needs no
// CAS loop and totals stay exact under concurrency.
class LatencyHistogram {
 public:
  // Default layout: 1 µs first bucket, ×2 growth, 28 buckets — covers
  // 1 µs .. ~134 s with the last bucket open-ended.
  explicit LatencyHistogram(LogBuckets layout = LogBuckets(1e-6, 2.0, 28));

  void observe(double v) {
    counts_[layout_.index_for(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Nanounit integer accumulation: exact, order-independent, atomic.
    sum_nano_.fetch_add(static_cast<std::uint64_t>(v * 1e9 + 0.5),
                        std::memory_order_relaxed);
  }

  const LogBuckets& layout() const { return layout_; }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const {
    return static_cast<double>(sum_nano_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::vector<std::uint64_t> bucket_counts() const;
  double quantile(double q) const;
  void reset();

 private:
  LogBuckets layout_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nano_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One scraped metric.  Histograms carry their bucket layout flattened into
// (upper bound, cumulative count) pairs plus precomputed quantiles, so
// exporters need no access to the live registry.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter value / sampled gauge; histogram count
  // Histogram-only fields.
  std::uint64_t count = 0;
  double sum = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le, cumulative)
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* find(std::string_view name) const;
  // Convenience: counter/gauge value by name, 0 when absent.
  double value(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent by name: re-registering returns the existing handle.
  // Registering a name under a different kind throws g80::Error (a metric
  // name means one thing).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name,
                              LogBuckets layout = LogBuckets(1e-6, 2.0, 28));
  // Gauge whose value is computed at scrape time (queue depths, ledger
  // totals): zero steady-state cost, the callback runs only under
  // snapshot().  The callback must be safe to invoke from any thread.
  void gauge_callback(const std::string& name,
                      std::function<std::int64_t()> fn);

  // Cumulative scrape: never resets, safe to call concurrently with
  // updates (counters are monotonic; histogram count/sum/buckets are each
  // individually consistent).
  MetricsSnapshot snapshot() const;

  // Test hook: zero all counters and histograms.
  void reset();

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> hist;
    std::function<std::int64_t()> callback;  // kGauge with no gauge ptr
  };
  Entry* find_locked(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

// Serializes a snapshot as the `metrics` protocol op's result payload:
//   {"metrics":[{"name":..,"kind":"counter","value":N},
//               {"name":..,"kind":"histogram","count":N,"sum":S,
//                "p50":..,"p90":..,"p99":..,"buckets":[[le,cum],...]},...]}
std::string metrics_json(const MetricsSnapshot& snap);

}  // namespace g80::obs
