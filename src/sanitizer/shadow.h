// Shadow memory over an SM's shared-memory arena (g80check racecheck).
//
// One shadow cell per 32-bit word tracks the last writer and up to two
// distinct readers, each tagged with (tid, barrier epoch, call site).  Two
// accesses to the same word race when they come from different threads in
// the same barrier epoch and at least one is a write — exactly the
// "unsynchronized shared-memory communication" the paper (§2) declares
// undefined on the 8800 GTX.  Both call sites are reported so the diagnostic
// names the producer and the consumer in kernel source.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace g80 {

// Static identity of a device-memory access in kernel source.
struct AccessSite {
  std::uint32_t id = 0;
  const char* file = nullptr;
  int line = 0;
};

// Renders "file:line" with the path trimmed to its basename.
std::string access_site_str(const AccessSite& site);

class SharedShadow {
 public:
  explicit SharedShadow(std::size_t smem_bytes);

  // Forget all access history (call at the start of each block).
  void reset();

  // Record an access covering [offset, offset+size) bytes of the arena in
  // barrier epoch `epoch`.  Returns a diagnostic describing the first race
  // this access completes, or nullopt when it is race-free.
  std::optional<std::string> on_write(int tid, int epoch, std::uint64_t offset,
                                      std::uint32_t size, const AccessSite& site);
  std::optional<std::string> on_read(int tid, int epoch, std::uint64_t offset,
                                     std::uint32_t size, const AccessSite& site);

 private:
  struct Access {
    int tid = -1;
    int epoch = -1;
    AccessSite site;
    bool valid() const { return tid >= 0; }
  };
  struct Word {
    Access writer;
    Access reader0, reader1;  // two distinct-thread reader slots
  };

  std::optional<std::string> check_word(std::uint64_t word, int tid, int epoch,
                                        const AccessSite& site, bool is_write);

  std::vector<Word> words_;
};

}  // namespace g80
