#include "sanitizer/sanitizer.h"

#include <algorithm>
#include <sstream>

namespace g80 {

bool SanitizerReport::has(Status s) const {
  return std::any_of(findings.begin(), findings.end(),
                     [s](const Finding& f) { return f.status == s; });
}

std::string SanitizerReport::summary() const {
  std::ostringstream os;
  os << "g80check: " << findings.size() << " finding(s) across "
     << blocks_checked << " block(s)";
  os << "\n";
  for (const Finding& f : findings)
    os << "  [" << status_name(f.status) << "] block " << f.block << ": "
       << f.message << "\n";
  return os.str();
}

Sanitizer::Sanitizer(const SanitizerOptions& opt, std::size_t smem_capacity)
    : opt_(opt), shadow_(smem_capacity) {}

void Sanitizer::begin_block(std::uint64_t linear_block) {
  block_ = linear_block;
  epoch_ = 0;
  shadow_.reset();
  ++report_.blocks_checked;
}

void Sanitizer::add_finding(Status s, const std::string& message) {
  if (report_.findings.size() >= opt_.max_findings) return;
  // The same static bug fires in every block of the grid; keep the first.
  if (!seen_.insert(message).second) return;
  report_.findings.push_back({s, block_, message});
}

namespace {

std::string sync_point_str(const SyncPoint& at) {
  return access_site_str(AccessSite{at.site, at.file, at.line});
}

}  // namespace

void Sanitizer::on_barrier_release(const BarrierSnapshot& snap) {
  ++report_.barriers_checked;

  // (1) Threads exited the kernel while others wait at a barrier: the
  // "__syncthreads reached by a strict subset of the block" case CUDA
  // leaves undefined (the G80 releases when active threads arrive; other
  // hardware deadlocks).
  if (!snap.exited.empty() && !snap.waiting.empty()) {
    std::ostringstream os;
    os << "thread " << snap.exited.front();
    if (snap.exited.size() > 1) os << " (and " << snap.exited.size() - 1 << " more)";
    os << " exited the kernel while thread " << snap.waiting.front().tid;
    if (snap.waiting.size() > 1)
      os << " (and " << snap.waiting.size() - 1 << " more)";
    os << " waits at __syncthreads() at "
       << sync_point_str(snap.waiting.front().at) << " (barrier epoch "
       << snap.epoch << ")";
    add_finding(Status::kBarrierDivergence, os.str());
  }

  // (2) Threads wait at *different* barriers — both sides of a divergent
  // branch contain a __syncthreads().  Site 0 means the barrier came from a
  // raw BlockRunner test without source info; skip those.
  for (const auto& w : snap.waiting) {
    const auto& first = snap.waiting.front();
    if (w.at.site != 0 && first.at.site != 0 && w.at.site != first.at.site) {
      std::ostringstream os;
      os << "threads wait at different barriers: thread " << first.tid
         << " at __syncthreads() at " << sync_point_str(first.at)
         << " but thread " << w.tid << " at __syncthreads() at "
         << sync_point_str(w.at) << " (barrier epoch " << snap.epoch << ")";
      add_finding(Status::kBarrierDivergence, os.str());
      break;
    }
  }

  epoch_ = snap.epoch + 1;
}

void Sanitizer::on_shared_read(int tid, std::uint64_t offset,
                               std::uint32_t size, const AccessSite& site) {
  ++report_.shared_reads;
  if (auto race = shadow_.on_read(tid, epoch_, offset, size, site))
    add_finding(Status::kSharedMemoryRace, *race);
}

void Sanitizer::on_shared_write(int tid, std::uint64_t offset,
                                std::uint32_t size, const AccessSite& site) {
  ++report_.shared_writes;
  if (auto race = shadow_.on_write(tid, epoch_, offset, size, site))
    add_finding(Status::kSharedMemoryRace, *race);
}

bool Sanitizer::fault_applies(int tid, int index, int want_tid,
                              int want_index) const {
  if (want_tid < 0 || tid != want_tid || index != want_index) return false;
  return opt_.fault.block < 0 ||
         block_ == static_cast<std::uint64_t>(opt_.fault.block);
}

bool Sanitizer::should_skip_barrier(int tid, int sync_index) const {
  return fault_applies(tid, sync_index, opt_.fault.skip_barrier_tid,
                       opt_.fault.skip_barrier_index);
}

std::size_t Sanitizer::fault_shared_store_index(int tid, int store_index,
                                                std::size_t i,
                                                std::size_t n) const {
  if (!fault_applies(tid, store_index, opt_.fault.corrupt_store_tid,
                     opt_.fault.corrupt_store_index))
    return i;
  return n == 0 ? i : (i + opt_.fault.corrupt_offset_words) % n;
}

std::size_t Sanitizer::fault_global_store_index(int tid, int store_index,
                                                std::size_t i,
                                                std::size_t n) const {
  if (!fault_applies(tid, store_index, opt_.fault.corrupt_global_tid,
                     opt_.fault.corrupt_global_index))
    return i;
  return n;  // one past the end: the bounds check raises kInvalidAddress
}

FaultClass classify_fault(Status s) {
  switch (s) {
    // Host-environment effects: re-executing (after backoff, possibly in a
    // degraded mode) can legitimately produce a different outcome.
    case Status::kTimeout:
    case Status::kLaunchFailure:
    case Status::kNotReady:
      return FaultClass::kTransient;
    // Everything else is a deterministic programming-model or configuration
    // violation — the same launch fails the same way every time.
    default:
      return FaultClass::kPermanent;
  }
}

}  // namespace g80
