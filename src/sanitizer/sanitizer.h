// g80check — a cuda-memcheck/compute-sanitizer-style validation layer for
// the simulator's execution stack.
//
// The two behaviours the paper (§2) declares *undefined* on the 8800 GTX —
// a __syncthreads() executed under divergent control flow, and
// unsynchronized shared-memory communication between threads — execute
// silently in an unchecked simulator and would produce plausible-but-wrong
// Table 3 numbers for a buggy application port.  When enabled
// (LaunchOptions::sanitize.enabled), launch() runs one extra pass over the
// grid with Ctx<SanitizerRecorder>; the recorder feeds shared-memory
// accesses into shadow memory (shadow.h) and the BlockRunner reports every
// barrier release through the BarrierObserver hook.  Disabled launches use
// the unmodified NullRecorder path and pay nothing.
//
// Deterministic fault injection (FaultInjection) perturbs a chosen access or
// skips a chosen barrier in the sanitize pass only, so tests can prove the
// detectors catch exactly what they claim.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "exec/block_runner.h"
#include "sanitizer/shadow.h"

namespace g80 {

// Deterministic fault injection, applied during the sanitize pass only.
// Indices are per-block dynamic counts: "thread T's n-th shared store" /
// "thread T's n-th __syncthreads()".
struct FaultInjection {
  // Skip this thread's n-th barrier, making it run ahead of (or exit while)
  // the rest of the block — the classic divergent-__syncthreads bug.
  int skip_barrier_tid = -1;  // -1 disables
  int skip_barrier_index = 0;
  // Redirect this thread's n-th shared store by `corrupt_offset_words`
  // words (wrapping within the view), colliding with another thread's slot.
  int corrupt_store_tid = -1;  // -1 disables
  int corrupt_store_index = 0;
  std::uint32_t corrupt_offset_words = 1;
  // Redirect this thread's n-th *global* store out of bounds (to index n of
  // an n-element view), modeling a wild device pointer.  Unlike the shared
  // faults this is detectable in any kernel — every kernel in the suite
  // writes global output — so the fault campaign (resil/campaign.h) can
  // exercise all 13 applications.  The OOB store raises
  // Status::kInvalidAddress from the sanitize pass.
  int corrupt_global_tid = -1;  // -1 disables
  int corrupt_global_index = 0;
  // Linear block index the faults apply to; -1 applies to every block.
  std::int64_t block = 0;
};

struct SanitizerOptions {
  bool enabled = false;
  // Throw StatusError (after recording the sticky device status) when the
  // sanitize pass produced findings.  With false, findings are only
  // reported through LaunchStats::sanitizer for host-side inspection.
  bool abort_on_error = true;
  std::size_t max_findings = 16;
  FaultInjection fault;
};

struct Finding {
  Status status = Status::kSuccess;
  std::uint64_t block = 0;  // linear index of the first block exhibiting it
  std::string message;
};

struct SanitizerReport {
  std::vector<Finding> findings;
  std::uint64_t blocks_checked = 0;
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  std::uint64_t barriers_checked = 0;

  bool clean() const { return findings.empty(); }
  bool has(Status s) const;
  // Multi-line human-readable report, one line per finding.
  std::string summary() const;
};

// Recovery-oriented classification of a failed launch's Status (g80resil).
// Transient faults are worth re-executing — a wall-clock watchdog timeout
// (host scheduling; a retry may complete, possibly after falling back to a
// cheaper execution mode) or an unclassified kLaunchFailure (e.g. a kernel
// functor that threw).  Permanent faults are deterministic programming-model
// violations: the identical launch fails identically, so the only recovery
// is Device::reset() plus a corrected relaunch.
enum class FaultClass {
  kTransient,  // retry (with backoff / fallback) may succeed
  kPermanent,  // deterministic violation; retry cannot help
};

FaultClass classify_fault(Status s);

class Sanitizer final : public BarrierObserver {
 public:
  Sanitizer(const SanitizerOptions& opt, std::size_t smem_capacity);

  // Reset per-block state before running block `linear_block`.
  void begin_block(std::uint64_t linear_block);

  // BarrierObserver: divergence checks at every barrier release.
  void on_barrier_release(const BarrierSnapshot& snap) override;

  // SanitizerRecorder hooks (offset is bytes into the shared arena).
  void on_shared_read(int tid, std::uint64_t offset, std::uint32_t size,
                      const AccessSite& site);
  void on_shared_write(int tid, std::uint64_t offset, std::uint32_t size,
                       const AccessSite& site);

  // Fault-injection queries (see FaultInjection).
  bool should_skip_barrier(int tid, int sync_index) const;
  std::size_t fault_shared_store_index(int tid, int store_index, std::size_t i,
                                       std::size_t n) const;
  std::size_t fault_global_store_index(int tid, int store_index, std::size_t i,
                                       std::size_t n) const;

  const SanitizerReport& report() const { return report_; }

 private:
  void add_finding(Status s, const std::string& message);
  bool fault_applies(int tid, int index, int want_tid, int want_index) const;

  SanitizerOptions opt_;
  SharedShadow shadow_;
  SanitizerReport report_;
  std::set<std::string> seen_;  // dedup identical diagnostics across blocks
  std::uint64_t block_ = 0;
  int epoch_ = 0;  // barrier epoch of the block currently executing
};

}  // namespace g80
