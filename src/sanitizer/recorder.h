// Recorder policy that instantiates Ctx for the g80check sanitize pass.
//
// Instruction counting and tracing hooks are empty (the sanitize pass does
// not feed the timing model); shared-memory accesses are forwarded — with
// their kernel-source locations — into the Sanitizer's shadow memory, and
// the fault-injection queries are answered from per-thread dynamic counters
// so "thread T's n-th store / n-th barrier" is deterministic.
#pragma once

#include <cstdint>
#include <source_location>

#include "hw/isa.h"
#include "sanitizer/sanitizer.h"

namespace g80 {

class SanitizerRecorder {
 public:
  static constexpr bool kTracing = false;
  static constexpr bool kSanitizing = true;

  SanitizerRecorder(Sanitizer* san, int tid) : san_(san), tid_(tid) {}

  void count(OpClass, int = 1) {}
  void flops(double) {}

  void mem(OpClass c, std::uint64_t addr, std::uint32_t size,
           std::uint32_t site, const std::source_location& loc) {
    // For shared accesses `addr` is the byte offset within the SM arena.
    const AccessSite at{site, loc.file_name(), static_cast<int>(loc.line())};
    if (c == OpClass::kLoadShared) {
      san_->on_shared_read(tid_, addr, size, at);
    } else if (c == OpClass::kStoreShared) {
      san_->on_shared_write(tid_, addr, size, at);
    }
  }

  void branch_outcome(bool, std::uint32_t) {}
  void sync_site(std::uint32_t, const std::source_location&) {}

  // --- Fault-injection hooks (called from Ctx under `if constexpr`) ---
  bool skip_barrier() { return san_->should_skip_barrier(tid_, sync_seq_++); }
  std::size_t fault_shared_index(std::size_t i, std::size_t n) {
    return san_->fault_shared_store_index(tid_, store_seq_++, i, n);
  }
  std::size_t fault_global_index(std::size_t i, std::size_t n) {
    return san_->fault_global_store_index(tid_, global_seq_++, i, n);
  }

 private:
  Sanitizer* san_;
  int tid_;
  int sync_seq_ = 0;    // dynamic __syncthreads() count for this thread
  int store_seq_ = 0;   // dynamic shared-store count for this thread
  int global_seq_ = 0;  // dynamic global-store count for this thread
};

}  // namespace g80
