#include "sanitizer/shadow.h"

#include <cstring>
#include <sstream>

namespace g80 {

std::string access_site_str(const AccessSite& site) {
  if (!site.file) return "<unknown site>";
  const char* base = site.file;
  for (const char* p = site.file; *p; ++p)
    if (*p == '/' || *p == '\\') base = p + 1;
  std::ostringstream os;
  os << base << ":" << site.line;
  return os.str();
}

namespace {

std::string race_message(const char* kind, std::uint64_t word, int tid_now,
                         const AccessSite& site_now, const char* verb_prev,
                         int tid_prev, const AccessSite& site_prev, int epoch) {
  std::ostringstream os;
  os << kind << " race on shared word at byte offset " << word * 4
     << ": thread " << tid_now << " at " << access_site_str(site_now)
     << " conflicts with thread " << tid_prev << "'s " << verb_prev << " at "
     << access_site_str(site_prev) << " in barrier epoch " << epoch
     << " (no __syncthreads between them)";
  return os.str();
}

}  // namespace

SharedShadow::SharedShadow(std::size_t smem_bytes)
    : words_((smem_bytes + 3) / 4) {}

void SharedShadow::reset() {
  std::fill(words_.begin(), words_.end(), Word{});
}

std::optional<std::string> SharedShadow::check_word(std::uint64_t word, int tid,
                                                    int epoch,
                                                    const AccessSite& site,
                                                    bool is_write) {
  if (word >= words_.size()) return std::nullopt;  // arena oob handled upstream
  Word& w = words_[word];
  std::optional<std::string> race;

  const auto conflicts = [&](const Access& prev) {
    return prev.valid() && prev.epoch == epoch && prev.tid != tid;
  };

  if (is_write) {
    if (conflicts(w.writer)) {
      race = race_message("write-write", word, tid, site, "write", w.writer.tid,
                          w.writer.site, epoch);
    } else if (conflicts(w.reader0)) {
      race = race_message("read-write", word, tid, site, "read", w.reader0.tid,
                          w.reader0.site, epoch);
    } else if (conflicts(w.reader1)) {
      race = race_message("read-write", word, tid, site, "read", w.reader1.tid,
                          w.reader1.site, epoch);
    }
    w.writer = {tid, epoch, site};
    // A new write supersedes older read history for race purposes.
    w.reader0 = w.reader1 = Access{};
  } else {
    if (conflicts(w.writer)) {
      race = race_message("write-read", word, tid, site, "write", w.writer.tid,
                          w.writer.site, epoch);
    }
    // Keep up to two distinct reading threads so a later write by either of
    // them still sees a conflicting reader in the other slot.
    if (!w.reader0.valid() || w.reader0.tid == tid) {
      w.reader0 = {tid, epoch, site};
    } else {
      w.reader1 = {tid, epoch, site};
    }
  }
  return race;
}

std::optional<std::string> SharedShadow::on_write(int tid, int epoch,
                                                  std::uint64_t offset,
                                                  std::uint32_t size,
                                                  const AccessSite& site) {
  // Update every covered word; report the first race the access completes.
  std::optional<std::string> race;
  const std::uint64_t first = offset / 4, last = (offset + size - 1) / 4;
  for (std::uint64_t w = first; w <= last; ++w)
    if (auto r = check_word(w, tid, epoch, site, /*is_write=*/true); r && !race)
      race = std::move(r);
  return race;
}

std::optional<std::string> SharedShadow::on_read(int tid, int epoch,
                                                 std::uint64_t offset,
                                                 std::uint32_t size,
                                                 const AccessSite& site) {
  std::optional<std::string> race;
  const std::uint64_t first = offset / 4, last = (offset + size - 1) / 4;
  for (std::uint64_t w = first; w <= last; ++w)
    if (auto r = check_word(w, tid, epoch, site, /*is_write=*/false); r && !race)
      race = std::move(r);
  return race;
}

}  // namespace g80
