// FDTD — 3-D finite-difference time-domain electromagnetic solver (Yee
// scheme, PEC box, soft sinusoidal source).
//
// The paper's FDTD is its Amdahl's-Law cautionary tale: the kernel accounts
// for only 16.4% of CPU execution time, capping total application speedup at
// 1.2X, and the kernel itself is bandwidth-bound (high memory-to-compute
// ratio) and relaunched every time step for global synchronization.  Our
// port keeps that application structure: two stencil kernels per step
// (H-update, E-update) plus genuine serial work per step on the host
// (source injection and observation-plane energy recording, with the
// associated host<->device transfers).
#pragma once

#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

struct FdtdParams {
  int nx = 64, ny = 32, nz = 32;
  int steps = 4;
  float ch = 0.5f;  // curl coefficients (normalized units)
  float ce = 0.5f;

  std::size_t cells() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }
  std::size_t idx(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * ny + y) * nx + x;
  }
};

struct FdtdFields {
  std::vector<float> ex, ey, ez, hx, hy, hz;

  void resize(std::size_t cells) {
    ex.assign(cells, 0.0f);
    ey.assign(cells, 0.0f);
    ez.assign(cells, 0.0f);
    hx.assign(cells, 0.0f);
    hy.assign(cells, 0.0f);
    hz.assign(cells, 0.0f);
  }
};

// CPU reference: full `steps` loop including source injection and
// observation recording; returns per-step observed energies.
std::vector<float> fdtd_cpu(const FdtdParams& p, FdtdFields& f);

// Serial helpers shared by CPU reference and GPU host loop.
float fdtd_source(const FdtdParams& p, int step);
float fdtd_observe_plane(const FdtdParams& p, const std::vector<float>& ez);

// H-update: H_new = H_old - ch * curl(E); out-of-place for idempotence.
struct FdtdHKernel {
  FdtdParams p;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& ex, DeviceBuffer<float>& ey,
                  DeviceBuffer<float>& ez, DeviceBuffer<float>& hx_in,
                  DeviceBuffer<float>& hy_in, DeviceBuffer<float>& hz_in,
                  DeviceBuffer<float>& hx_out, DeviceBuffer<float>& hy_out,
                  DeviceBuffer<float>& hz_out) const {
    auto Ex = ctx.global(ex), Ey = ctx.global(ey), Ez = ctx.global(ez);
    auto HxI = ctx.global(hx_in), HyI = ctx.global(hy_in), HzI = ctx.global(hz_in);
    auto HxO = ctx.global(hx_out), HyO = ctx.global(hy_out), HzO = ctx.global(hz_out);

    ctx.ialu(6);
    const int x = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x +
                                   ctx.thread_idx().x);
    const int y = static_cast<int>(ctx.block_idx().y) % p.ny;
    const int z = static_cast<int>(ctx.block_idx().y) / p.ny;
    const std::size_t c = p.idx(x, y, z);

    const bool interior =
        x < p.nx - 1 && y < p.ny - 1 && z < p.nz - 1;
    if (!ctx.branch(interior)) {
      // PEC boundary: tangential H unchanged.
      HxO.st(c, HxI.ld(c));
      HyO.st(c, HyI.ld(c));
      HzO.st(c, HzI.ld(c));
      return;
    }
    ctx.ialu(6);  // neighbor index arithmetic
    const float ez_c = Ez.ld(c), ey_c = Ey.ld(c), ex_c = Ex.ld(c);
    const float ez_y1 = Ez.ld(p.idx(x, y + 1, z));
    const float ey_z1 = Ey.ld(p.idx(x, y, z + 1));
    const float ex_z1 = Ex.ld(p.idx(x, y, z + 1));
    const float ez_x1 = Ez.ld(p.idx(x + 1, y, z));
    const float ey_x1 = Ey.ld(p.idx(x + 1, y, z));
    const float ex_y1 = Ex.ld(p.idx(x, y + 1, z));

    HxO.st(c, ctx.mad(-p.ch,
                      ctx.sub(ctx.sub(ez_y1, ez_c), ctx.sub(ey_z1, ey_c)),
                      HxI.ld(c)));
    HyO.st(c, ctx.mad(-p.ch,
                      ctx.sub(ctx.sub(ex_z1, ex_c), ctx.sub(ez_x1, ez_c)),
                      HyI.ld(c)));
    HzO.st(c, ctx.mad(-p.ch,
                      ctx.sub(ctx.sub(ey_x1, ey_c), ctx.sub(ex_y1, ex_c)),
                      HzI.ld(c)));
  }
};

// E-update: E_new = E_old + ce * curl(H); out-of-place.
struct FdtdEKernel {
  FdtdParams p;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& hx, DeviceBuffer<float>& hy,
                  DeviceBuffer<float>& hz, DeviceBuffer<float>& ex_in,
                  DeviceBuffer<float>& ey_in, DeviceBuffer<float>& ez_in,
                  DeviceBuffer<float>& ex_out, DeviceBuffer<float>& ey_out,
                  DeviceBuffer<float>& ez_out) const {
    auto Hx = ctx.global(hx), Hy = ctx.global(hy), Hz = ctx.global(hz);
    auto ExI = ctx.global(ex_in), EyI = ctx.global(ey_in), EzI = ctx.global(ez_in);
    auto ExO = ctx.global(ex_out), EyO = ctx.global(ey_out), EzO = ctx.global(ez_out);

    ctx.ialu(6);
    const int x = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x +
                                   ctx.thread_idx().x);
    const int y = static_cast<int>(ctx.block_idx().y) % p.ny;
    const int z = static_cast<int>(ctx.block_idx().y) / p.ny;
    const std::size_t c = p.idx(x, y, z);

    const bool interior = x > 0 && y > 0 && z > 0;
    if (!ctx.branch(interior)) {
      ExO.st(c, ExI.ld(c));
      EyO.st(c, EyI.ld(c));
      EzO.st(c, EzI.ld(c));
      return;
    }
    ctx.ialu(6);
    const float hz_c = Hz.ld(c), hy_c = Hy.ld(c), hx_c = Hx.ld(c);
    const float hz_ym = Hz.ld(p.idx(x, y - 1, z));
    const float hy_zm = Hy.ld(p.idx(x, y, z - 1));
    const float hx_zm = Hx.ld(p.idx(x, y, z - 1));
    const float hz_xm = Hz.ld(p.idx(x - 1, y, z));
    const float hy_xm = Hy.ld(p.idx(x - 1, y, z));
    const float hx_ym = Hx.ld(p.idx(x, y - 1, z));

    ExO.st(c, ctx.mad(p.ce,
                      ctx.sub(ctx.sub(hz_c, hz_ym), ctx.sub(hy_c, hy_zm)),
                      ExI.ld(c)));
    EyO.st(c, ctx.mad(p.ce,
                      ctx.sub(ctx.sub(hx_c, hx_zm), ctx.sub(hz_c, hz_xm)),
                      EyI.ld(c)));
    EzO.st(c, ctx.mad(p.ce,
                      ctx.sub(ctx.sub(hy_c, hy_xm), ctx.sub(hx_c, hx_ym)),
                      EzI.ld(c)));
  }
};

class FdtdApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
