#include "apps/fdtd/fdtd.h"

#include <cmath>

#include "common/measure.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

float fdtd_source(const FdtdParams& p, int step) {
  return std::sin(0.3f * static_cast<float>(step + 1));
}

float fdtd_observe_plane(const FdtdParams& p, const std::vector<float>& ez) {
  // Not just a plane: the application records total field energy each step
  // (the serial, unported phase of the original code — the reason the
  // paper's FDTD is Amdahl-capped).
  float acc = 0.0f;
  for (float v : ez) acc += v * v;
  return acc;
}

namespace {

struct CpuSplit {
  double kernel_seconds = 0;
  double other_seconds = 0;
};

std::vector<float> fdtd_cpu_split(const FdtdParams& p, FdtdFields& f,
                                  CpuSplit* split) {
  std::vector<float> energies;
  FdtdFields tmp;
  tmp.resize(p.cells());
  Timer t;
  for (int s = 0; s < p.steps; ++s) {
    t.reset();
    // --- H sweep (out-of-place, mirroring the kernel expressions) ---
    for (int z = 0; z < p.nz; ++z) {
      for (int y = 0; y < p.ny; ++y) {
        for (int x = 0; x < p.nx; ++x) {
          const std::size_t c = p.idx(x, y, z);
          if (x < p.nx - 1 && y < p.ny - 1 && z < p.nz - 1) {
            tmp.hx[c] = -p.ch * ((f.ez[p.idx(x, y + 1, z)] - f.ez[c]) -
                                 (f.ey[p.idx(x, y, z + 1)] - f.ey[c])) +
                        f.hx[c];
            tmp.hy[c] = -p.ch * ((f.ex[p.idx(x, y, z + 1)] - f.ex[c]) -
                                 (f.ez[p.idx(x + 1, y, z)] - f.ez[c])) +
                        f.hy[c];
            tmp.hz[c] = -p.ch * ((f.ey[p.idx(x + 1, y, z)] - f.ey[c]) -
                                 (f.ex[p.idx(x, y + 1, z)] - f.ex[c])) +
                        f.hz[c];
          } else {
            tmp.hx[c] = f.hx[c];
            tmp.hy[c] = f.hy[c];
            tmp.hz[c] = f.hz[c];
          }
        }
      }
    }
    f.hx.swap(tmp.hx);
    f.hy.swap(tmp.hy);
    f.hz.swap(tmp.hz);
    // --- E sweep ---
    for (int z = 0; z < p.nz; ++z) {
      for (int y = 0; y < p.ny; ++y) {
        for (int x = 0; x < p.nx; ++x) {
          const std::size_t c = p.idx(x, y, z);
          if (x > 0 && y > 0 && z > 0) {
            tmp.ex[c] = p.ce * ((f.hz[c] - f.hz[p.idx(x, y - 1, z)]) -
                                (f.hy[c] - f.hy[p.idx(x, y, z - 1)])) +
                        f.ex[c];
            tmp.ey[c] = p.ce * ((f.hx[c] - f.hx[p.idx(x, y, z - 1)]) -
                                (f.hz[c] - f.hz[p.idx(x - 1, y, z)])) +
                        f.ey[c];
            tmp.ez[c] = p.ce * ((f.hy[c] - f.hy[p.idx(x - 1, y, z)]) -
                                (f.hx[c] - f.hx[p.idx(x, y - 1, z)])) +
                        f.ez[c];
          } else {
            tmp.ex[c] = f.ex[c];
            tmp.ey[c] = f.ey[c];
            tmp.ez[c] = f.ez[c];
          }
        }
      }
    }
    f.ex.swap(tmp.ex);
    f.ey.swap(tmp.ey);
    f.ez.swap(tmp.ez);
    if (split) split->kernel_seconds += t.seconds();

    // --- Serial phase: source injection + observation ---
    t.reset();
    f.ez[p.idx(p.nx / 2, p.ny / 2, p.nz / 2)] += fdtd_source(p, s);
    energies.push_back(fdtd_observe_plane(p, f.ez));
    if (split) split->other_seconds += t.seconds();
  }
  return energies;
}

}  // namespace

std::vector<float> fdtd_cpu(const FdtdParams& p, FdtdFields& f) {
  return fdtd_cpu_split(p, f, nullptr);
}

AppInfo FdtdApp::info() const {
  return AppInfo{
      .name = "FDTD",
      .description = "3-D Yee finite-difference time-domain EM solver",
      // Table 2: "FDTD's kernel takes only 16.4% of execution time, limiting
      // potential application speedup to 1.2X."  Our reimplementation has a
      // lighter serial phase, so the split differs; the Amdahl cap mechanism
      // is what carries over.
      .paper_kernel_pct = 16.4,
      .paper_bottleneck = "global memory bandwidth; per-step relaunch (§5.1)",
      .paper_kernel_speedup = 10.5,
      .paper_app_speedup = 1.16,
  };
}

AppResult FdtdApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  FdtdParams p;
  if (scale == RunScale::kQuick) {
    p.nx = 32;
    p.ny = 8;
    p.nz = 8;
    p.steps = 2;
  }

  AppResult r;
  r.info = info();

  // --- CPU baseline (kernel/serial split measured) ---
  FdtdFields f_ref;
  CpuSplit split;
  std::vector<float> energies_ref;
  const double total = measure_seconds([&] {
    f_ref.resize(p.cells());
    split = CpuSplit{};
    energies_ref = fdtd_cpu_split(p, f_ref, &split);
  });
  const double measured = split.kernel_seconds + split.other_seconds;
  const double norm = measured > 0 ? total / measured : 1.0;
  r.cpu_kernel_seconds = to_opteron_seconds(split.kernel_seconds * norm);
  r.cpu_other_seconds = to_opteron_seconds(split.other_seconds * norm);

  // --- GPU port ---
  dev.ledger().reset();
  const std::size_t cells = p.cells();
  auto ex_a = dev.alloc<float>(cells), ex_b = dev.alloc<float>(cells);
  auto ey_a = dev.alloc<float>(cells), ey_b = dev.alloc<float>(cells);
  auto ez_a = dev.alloc<float>(cells), ez_b = dev.alloc<float>(cells);
  auto hx_a = dev.alloc<float>(cells), hx_b = dev.alloc<float>(cells);
  auto hy_a = dev.alloc<float>(cells), hy_b = dev.alloc<float>(cells);
  auto hz_a = dev.alloc<float>(cells), hz_b = dev.alloc<float>(cells);
  const std::vector<float> zeros(cells, 0.0f);
  for (auto* b : {&ex_a, &ey_a, &ez_a, &hx_a, &hy_a, &hz_a})
    b->copy_from_host(zeros);

  auto *ex = &ex_a, *exn = &ex_b, *ey = &ey_a, *eyn = &ey_b, *ez = &ez_a,
       *ezn = &ez_b;
  auto *hx = &hx_a, *hxn = &hx_b, *hy = &hy_a, *hyn = &hy_b, *hz = &hz_a,
       *hzn = &hz_b;

  LaunchOptions opt;
  opt.regs_per_thread = 16;
  opt.uses_sync = false;
  const Dim3 block(static_cast<unsigned>(std::min(p.nx, 128)));
  const Dim3 grid(static_cast<unsigned>(p.nx / block.x),
                  static_cast<unsigned>(p.ny * p.nz));

  std::vector<float> energies_gpu;
  Timer serial_timer;
  double gpu_serial = 0;
  for (int s = 0; s < p.steps; ++s) {
    auto hstats = launch(dev, grid, block, opt, FdtdHKernel{p}, *ex, *ey, *ez,
                         *hx, *hy, *hz, *hxn, *hyn, *hzn);
    std::swap(hx, hxn);
    std::swap(hy, hyn);
    std::swap(hz, hzn);
    accumulate_launch(r, dev.spec(), hstats);
    auto estats = launch(dev, grid, block, opt, FdtdEKernel{p}, *hx, *hy, *hz,
                         *ex, *ey, *ez, *exn, *eyn, *ezn);
    std::swap(ex, exn);
    std::swap(ey, eyn);
    std::swap(ez, ezn);
    accumulate_launch(r, dev.spec(), estats, /*representative=*/true);

    // Serial phase on the host: inject source (tiny h2d) and pull Ez back
    // for the energy observation (d2h of the full component).
    serial_timer.reset();
    ez->raw()[p.idx(p.nx / 2, p.ny / 2, p.nz / 2)] += fdtd_source(p, s);
    dev.ledger().record_h2d(sizeof(float));
    const auto ez_host = ez->copy_to_host();
    energies_gpu.push_back(fdtd_observe_plane(p, ez_host));
    gpu_serial += serial_timer.seconds();
  }
  r.cpu_other_seconds = std::max(r.cpu_other_seconds,
                                 to_opteron_seconds(gpu_serial));
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate: field state and observation series ---
  double err = 0;
  const auto ex_g = ex->copy_to_host();
  const auto ez_g = ez->copy_to_host();
  const auto hy_g = hy->copy_to_host();
  for (std::size_t c = 0; c < cells; ++c) {
    err = std::max(err, rel_err(ex_g[c], f_ref.ex[c], 1e-3));
    err = std::max(err, rel_err(ez_g[c], f_ref.ez[c], 1e-3));
    err = std::max(err, rel_err(hy_g[c], f_ref.hy[c], 1e-3));
  }
  for (std::size_t s = 0; s < energies_ref.size(); ++s)
    err = std::max(err, rel_err(energies_gpu[s], energies_ref[s], 1e-3));
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
