#include "apps/rpes/rpes.h"

#include <cmath>

#include "common/measure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

RpesWorkload RpesWorkload::generate(int pairs, std::uint64_t seed) {
  SplitMix64 rng(seed);
  RpesWorkload w;
  w.px.resize(pairs);
  w.py.resize(pairs);
  w.pz.resize(pairs);
  w.eta.resize(pairs);
  w.coef.resize(pairs);
  for (int i = 0; i < pairs; ++i) {
    w.px[i] = rng.uniform_f(-3.0f, 3.0f);
    w.py[i] = rng.uniform_f(-3.0f, 3.0f);
    w.pz[i] = rng.uniform_f(-3.0f, 3.0f);
    w.eta[i] = rng.uniform_f(0.2f, 4.0f);
    w.coef[i] = rng.uniform_f(0.1f, 1.0f);
  }
  // 8-point Gauss-Legendre on [0,1], stored as (node^2, weight).
  static const double nodes[kRpesQuadNodes] = {
      0.01985507, 0.10166676, 0.23723379, 0.40828268,
      0.59171732, 0.76276621, 0.89833324, 0.98014493};
  static const double weights[kRpesQuadNodes] = {
      0.05061427, 0.11119052, 0.15685332, 0.18134189,
      0.18134189, 0.15685332, 0.11119052, 0.05061427};
  w.quad.resize(kRpesQuadNodes);
  for (int k = 0; k < kRpesQuadNodes; ++k) {
    w.quad[k] = {static_cast<float>(nodes[k] * nodes[k]),
                 static_cast<float>(weights[k])};
  }
  // STO-like contraction: exponent scales and weights per primitive pair.
  w.contraction.resize(kRpesContraction);
  for (int cdeg = 0; cdeg < kRpesContraction; ++cdeg) {
    w.contraction[cdeg] = {0.5f + 0.5f * static_cast<float>(cdeg),
                           1.0f / static_cast<float>(1 + cdeg)};
  }
  return w;
}

void rpes_cpu(const RpesWorkload& w, std::vector<float>& integrals) {
  const int n = w.n();
  integrals.assign(static_cast<std::size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const float dx = w.px[i] - w.px[j];
      const float dy = w.py[i] - w.py[j];
      const float dz = w.pz[i] - w.pz[j];
      const float r2 = dx * dx + (dy * dy + dz * dz);
      const float esum = w.eta[i] + w.eta[j];
      const float rho = (w.eta[i] * w.eta[j]) * (1.0f / esum);
      const float t_arg = rho * r2;
      float f0 = 0.0f;
      for (int cdeg = 0; cdeg < kRpesContraction; ++cdeg) {
        const float tc = t_arg * w.contraction[cdeg].x;
        float fc = 0.0f;
        for (int k = 0; k < kRpesQuadNodes; ++k)
          fc = w.quad[k].y * std::exp((0.0f - tc) * w.quad[k].x) + fc;
        f0 = w.contraction[cdeg].y * fc + f0;
      }
      const float pref = RpesKernel::kTwoPi52 *
                         ((1.0f / (w.eta[i] * w.eta[j])) *
                          (1.0f / std::sqrt(esum)));
      integrals[static_cast<std::size_t>(i) * n + j] =
          (w.coef[i] * w.coef[j]) * (pref * f0);
    }
  }
}

AppInfo RpesApp::info() const {
  return AppInfo{
      .name = "RPES",
      .description = "two-electron repulsion integrals via Rys quadrature",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue (compute-dense, minimal global "
                          "traffic, §5.1 top-speedup group)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult RpesApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int pairs = scale == RunScale::kQuick ? 96 : 320;
  const auto w = RpesWorkload::generate(pairs, /*seed=*/81);

  AppResult r;
  r.info = info();

  std::vector<float> ref;
  const double host_secs = measure_seconds([&] { rpes_cpu(w, ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  dev.ledger().reset();
  auto d_px = dev.alloc<float>(w.px.size());
  auto d_py = dev.alloc<float>(w.py.size());
  auto d_pz = dev.alloc<float>(w.pz.size());
  auto d_eta = dev.alloc<float>(w.eta.size());
  auto d_coef = dev.alloc<float>(w.coef.size());
  d_px.copy_from_host(w.px);
  d_py.copy_from_host(w.py);
  d_pz.copy_from_host(w.pz);
  d_eta.copy_from_host(w.eta);
  d_coef.copy_from_host(w.coef);
  auto d_quad = dev.alloc_constant<Float2>(w.quad.size());
  d_quad.copy_from_host(w.quad);
  auto d_contr = dev.alloc_constant<Float2>(w.contraction.size());
  d_contr.copy_from_host(w.contraction);
  auto d_out = dev.alloc<float>(static_cast<std::size_t>(pairs) * pairs);

  LaunchOptions opt;
  opt.regs_per_thread = 16;
  opt.uses_sync = false;
  const Dim3 block(16, 16);
  const Dim3 grid(static_cast<unsigned>(pairs / 16),
                  static_cast<unsigned>(pairs / 16));
  const auto stats = launch(dev, grid, block, opt, RpesKernel{pairs}, d_px,
                            d_py, d_pz, d_eta, d_coef, d_quad, d_contr, d_out);
  const auto out_gpu = d_out.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  double err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    err = std::max(err, rel_err(out_gpu[i], ref[i], 1e-3));
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
