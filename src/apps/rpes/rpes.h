// RPES — Rys polynomial equation solver (two-electron repulsion integrals).
//
// Computational skeleton of the paper's quantum-chemistry port: every thread
// evaluates one (bra, ket) primitive-pair repulsion integral
//
//   I_ij = c_i c_j K(eta_i, eta_j) * F0(rho |P_i - P_j|^2),
//
// where the Boys function F0(T) = Int_0^1 exp(-T t^2) dt is evaluated by
// quadrature over nodes held in constant memory — the Rys-quadrature
// structure, with one SFU exponential per node.  Very high arithmetic
// density, almost no global traffic: the paper places RPES in its
// top-speedup group ("low global access ratios ... spend most of their
// execution time performing computation", §5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

inline constexpr int kRpesQuadNodes = 8;
inline constexpr int kRpesContraction = 4;  // primitive pairs per shell pair

struct RpesWorkload {
  // Primitive shell-pair data (SoA).
  std::vector<float> px, py, pz;  // composite centers
  std::vector<float> eta;         // combined exponents
  std::vector<float> coef;        // contraction coefficients
  // Gauss-Legendre nodes/weights on [0,1], as (node^2, weight).
  std::vector<Float2> quad;
  // Contraction table: per primitive pair, (exponent scale, weight).
  std::vector<Float2> contraction;

  int n() const { return static_cast<int>(eta.size()); }
  static RpesWorkload generate(int pairs, std::uint64_t seed);
};

void rpes_cpu(const RpesWorkload& w, std::vector<float>& integrals);

struct RpesKernel {
  int n = 0;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& px, DeviceBuffer<float>& py,
                  DeviceBuffer<float>& pz, DeviceBuffer<float>& eta,
                  DeviceBuffer<float>& coef, const ConstantBuffer<Float2>& quad,
                  const ConstantBuffer<Float2>& contraction,
                  DeviceBuffer<float>& out) const {
    auto Px = ctx.global(px), Py = ctx.global(py), Pz = ctx.global(pz);
    auto Eta = ctx.global(eta), Coef = ctx.global(coef);
    auto Quad = ctx.constant(quad);
    auto Contr = ctx.constant(contraction);
    auto Out = ctx.global(out);

    ctx.ialu(4);
    const int i = static_cast<int>(ctx.block_idx().y * ctx.block_dim().y +
                                   ctx.thread_idx().y);
    const int j = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x +
                                   ctx.thread_idx().x);

    const float dx = ctx.sub(Px.ld(i), Px.ld(j));
    const float dy = ctx.sub(Py.ld(i), Py.ld(j));
    const float dz = ctx.sub(Pz.ld(i), Pz.ld(j));
    const float r2 = ctx.mad(dx, dx, ctx.mad(dy, dy, ctx.mul(dz, dz)));

    const float ei = Eta.ld(i), ej = Eta.ld(j);
    const float esum = ctx.add(ei, ej);
    const float rho = ctx.mul(ctx.mul(ei, ej), ctx.rcpf(esum));
    const float t_arg = ctx.mul(rho, r2);

    // Contracted Boys sum: for each primitive pair c, quadrature
    // F0(T_c) = sum_k w_k exp(-T_c x_k^2) — 32 SFU exponentials per thread,
    // all parameters broadcast from constant memory.  This is where RPES
    // earns its place in the paper's compute-bound, top-speedup group.
    float f0 = 0.0f;
    for (int c = 0; c < kRpesContraction; ++c) {
      const Float2 cc = Contr.ld(c);  // broadcast
      const float tc = ctx.mul(t_arg, cc.x);
      float fc = 0.0f;
      for (int k = 0; k < kRpesQuadNodes; ++k) {
        const Float2 q = Quad.ld(k);  // broadcast
        fc = ctx.mad(q.y, ctx.expf(ctx.mul(ctx.sub(0.0f, tc), q.x)), fc);
        ctx.ialu(1);
        ctx.loop_branch();
      }
      f0 = ctx.mad(cc.y, fc, f0);
      ctx.ialu(1);
      ctx.loop_branch();
    }

    // Prefactor: 2 pi^(5/2) / (ei * ej * sqrt(ei + ej)).
    const float pref = ctx.mul(
        kTwoPi52,
        ctx.mul(ctx.rcpf(ctx.mul(ei, ej)), ctx.rsqrtf(esum)));
    const float val =
        ctx.mul(ctx.mul(Coef.ld(i), Coef.ld(j)), ctx.mul(pref, f0));
    ctx.ialu(2);
    Out.st(static_cast<std::size_t>(i) * n + j, val);
  }

  static constexpr float kTwoPi52 = 34.986836655249725f;  // 2 * pi^(5/2)
};

class RpesApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
