// Dense single-precision matrix multiplication — the paper's §4 case study.
//
// Variants map one-to-one onto the paper's optimization walk:
//   kNaive            §4.1  one thread per C element, all loads from global
//   kNaiveUnrolled    Fig.4 "not tiled / tiled & unrolled" bar
//   kTiled            §4.2  TILExTILE shared-memory tiling (4/8/12/16)
//   kTiledUnrolled    §4.3  inner dot-product loop fully unrolled
//   kPrefetch         §4.4  unrolled + next-tile prefetching (11 regs =>
//                           one fewer block per SM)
//
// Instruction annotations (ialu/misc/branch) reproduce the PTX instruction
// mixes the paper counts: naive 1 MAD in 8 ops with 1/4 global loads (§4.1),
// unrolled 16 MADs in 59 ops (§4.3).  Register counts are the paper's.
#pragma once

#include <string>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

enum class MatmulVariant {
  kNaive,
  kNaiveUnrolled,
  kTiled,
  kTiledUnrolled,
  kPrefetch,
  // Extension beyond the paper (the direction later G80 SGEMM work took):
  // each thread computes two C elements, reusing the B operand from shared
  // memory across both — "register tiling", which §5.2 mentions for H.264.
  kRegisterTiled,
};

struct MatmulConfig {
  MatmulVariant variant = MatmulVariant::kTiledUnrolled;
  int tile = 16;  // used by the tiled variants

  std::string name() const;
  int regs_per_thread() const;
};

struct MatmulWorkload {
  int n = 0;  // square matrices, n x n
  std::vector<float> a, b;

  static MatmulWorkload generate(int n, std::uint64_t seed);
};

void matmul_cpu(int n, const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c);

// --- Kernels ---------------------------------------------------------------

struct MatmulNaiveKernel {
  int n = 0;
  bool unrolled = false;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& a, DeviceBuffer<float>& b,
                  DeviceBuffer<float>& c) const {
    auto A = ctx.global(a);
    auto B = ctx.global(b);
    auto C = ctx.global(c);
    // row/col from block and thread coordinates (hardware-supported).
    ctx.ialu(4);
    const int row = static_cast<int>(ctx.block_idx().y * ctx.block_dim().y +
                                     ctx.thread_idx().y);
    const int col = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x +
                                     ctx.thread_idx().x);
    float sum = 0.0f;
    for (int k = 0; k < n; ++k) {
      // indexA = row*n + k advances by 1; indexB = k*n + col by n.
      sum = ctx.mad(A.ld(static_cast<std::size_t>(row) * n + k),
                    B.ld(static_cast<std::size_t>(k) * n + col), sum);
      if (unrolled) {
        ctx.ialu(2);  // two pointer bumps; induction/test amortized away
      } else {
        ctx.ialu(3);  // two pointer bumps + k++
        ctx.misc(1);  // setp
        ctx.loop_branch();
      }
    }
    ctx.ialu(1);
    C.st(static_cast<std::size_t>(row) * n + col, sum);
  }
};

struct MatmulTiledKernel {
  int n = 0;
  int tile = 16;
  bool unrolled = false;
  bool prefetch = false;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& a, DeviceBuffer<float>& b,
                  DeviceBuffer<float>& c) const {
    auto A = ctx.global(a);
    auto B = ctx.global(b);
    auto C = ctx.global(c);
    auto As = ctx.template shared<float>(static_cast<std::size_t>(tile) * tile);
    auto Bs = ctx.template shared<float>(static_cast<std::size_t>(tile) * tile);

    ctx.ialu(4);
    const int tx = static_cast<int>(ctx.thread_idx().x);
    const int ty = static_cast<int>(ctx.thread_idx().y);
    const int row = static_cast<int>(ctx.block_idx().y) * tile + ty;
    const int col = static_cast<int>(ctx.block_idx().x) * tile + tx;

    float sum = 0.0f;
    for (int m = 0; m < n / tile; ++m) {
      if (prefetch) ctx.misc(2);  // stage next-tile values through registers
      // Cooperative tile loads, organized for global-access coalescing.
      As.st(static_cast<std::size_t>(ty) * tile + tx,
            A.ld(static_cast<std::size_t>(row) * n + m * tile + tx));
      Bs.st(static_cast<std::size_t>(ty) * tile + tx,
            B.ld(static_cast<std::size_t>(m * tile + ty) * n + col));
      ctx.sync();

      if (unrolled) {
        // Fully unrolled dot product: constant shared-memory offsets, no
        // induction variable, no test/branch (§4.3).
        for (int k = 0; k < tile; ++k) {
          sum = ctx.mad(As.ld(static_cast<std::size_t>(ty) * tile + k),
                        Bs.ld(static_cast<std::size_t>(k) * tile + tx), sum);
        }
      } else {
        for (int k = 0; k < tile; ++k) {
          sum = ctx.mad(As.ld(static_cast<std::size_t>(ty) * tile + k),
                        Bs.ld(static_cast<std::size_t>(k) * tile + tx), sum);
          ctx.ialu(3);  // two shared-address bumps + k++
          ctx.loop_branch();
        }
      }
      ctx.sync();
      // Outer-loop overhead: tile-base advances, m++, test, branch.
      ctx.ialu(3);
      ctx.misc(1);
      ctx.loop_branch();
    }
    ctx.ialu(1);
    C.st(static_cast<std::size_t>(row) * n + col, sum);
  }
};

// Register-tiled: block (TILE, TILE/2); thread (tx, ty) computes C rows
// by*TILE+ty and by*TILE+ty+TILE/2 of column bx*TILE+tx.  The shared Bs
// operand is loaded once per k and feeds two MADs, raising the useful
// fraction of the instruction mix beyond the fully-unrolled kernel's 16/59.
struct MatmulRegTiledKernel {
  int n = 0;
  int tile = 16;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& a, DeviceBuffer<float>& b,
                  DeviceBuffer<float>& c) const {
    const int half = tile / 2;
    auto A = ctx.global(a);
    auto B = ctx.global(b);
    auto C = ctx.global(c);
    auto As = ctx.template shared<float>(static_cast<std::size_t>(tile) * tile);
    auto Bs = ctx.template shared<float>(static_cast<std::size_t>(tile) * tile);

    ctx.ialu(5);
    const int tx = static_cast<int>(ctx.thread_idx().x);
    const int ty = static_cast<int>(ctx.thread_idx().y);
    const int row0 = static_cast<int>(ctx.block_idx().y) * tile + ty;
    const int row1 = row0 + half;
    const int col = static_cast<int>(ctx.block_idx().x) * tile + tx;

    float sum0 = 0.0f, sum1 = 0.0f;
    for (int m = 0; m < n / tile; ++m) {
      // Each thread stages two rows of each input tile (coalesced).
      As.st(static_cast<std::size_t>(ty) * tile + tx,
            A.ld(static_cast<std::size_t>(row0) * n + m * tile + tx));
      As.st(static_cast<std::size_t>(ty + half) * tile + tx,
            A.ld(static_cast<std::size_t>(row1) * n + m * tile + tx));
      Bs.st(static_cast<std::size_t>(ty) * tile + tx,
            B.ld(static_cast<std::size_t>(m * tile + ty) * n + col));
      Bs.st(static_cast<std::size_t>(ty + half) * tile + tx,
            B.ld(static_cast<std::size_t>(m * tile + ty + half) * n + col));
      ctx.sync();
      // Fully unrolled; the Bs operand is shared by both accumulators.
      for (int k = 0; k < tile; ++k) {
        const float bk = Bs.ld(static_cast<std::size_t>(k) * tile + tx);
        sum0 = ctx.mad(As.ld(static_cast<std::size_t>(ty) * tile + k), bk, sum0);
        sum1 = ctx.mad(
            As.ld(static_cast<std::size_t>(ty + half) * tile + k), bk, sum1);
      }
      ctx.sync();
      ctx.ialu(3);
      ctx.misc(1);
      ctx.loop_branch();
    }
    ctx.ialu(2);
    C.st(static_cast<std::size_t>(row0) * n + col, sum0);
    C.st(static_cast<std::size_t>(row1) * n + col, sum1);
  }
};

// Launches the configured variant over n x n matrices already on the device.
// When `profiler` is non-null the launch reports its counters to it under
// the variant's `cfg.name()`; when `scope` is non-null the launch likewise
// records its g80scope time series there.
LaunchStats run_matmul(Device& dev, const MatmulConfig& cfg, int n,
                       DeviceBuffer<float>& a, DeviceBuffer<float>& b,
                       DeviceBuffer<float>& c, bool functional,
                       prof::Profiler* profiler = nullptr,
                       scope::Session* scope = nullptr);

class MatmulApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
