#include "apps/matmul/matmul.h"

#include "common/error.h"
#include "common/measure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/str.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

std::string MatmulConfig::name() const {
  switch (variant) {
    case MatmulVariant::kNaive: return "not tiled";
    case MatmulVariant::kNaiveUnrolled: return "not tiled, unrolled";
    case MatmulVariant::kTiled: return cat(tile, "x", tile, " tiled");
    case MatmulVariant::kTiledUnrolled:
      return cat(tile, "x", tile, " tiled & unrolled");
    case MatmulVariant::kPrefetch:
      return cat(tile, "x", tile, " tiled & unrolled + prefetch");
    case MatmulVariant::kRegisterTiled:
      return cat(tile, "x", tile, " register tiled (2 C/thread)");
  }
  G80_CHECK(false);
}

int MatmulConfig::regs_per_thread() const {
  // The paper's CUDA 0.8 register counts: 10 for the base versions, 9 after
  // complete unrolling eliminates the induction variable (§4.3), 11 with
  // prefetching (§4.4) — the count that drops occupancy to 2 blocks/SM.
  switch (variant) {
    case MatmulVariant::kNaive: return 10;
    case MatmulVariant::kNaiveUnrolled: return 10;
    case MatmulVariant::kTiled: return 10;
    case MatmulVariant::kTiledUnrolled: return 9;
    case MatmulVariant::kPrefetch: return 11;
    // Two accumulators plus doubled addressing state.
    case MatmulVariant::kRegisterTiled: return 14;
  }
  G80_CHECK(false);
}

MatmulWorkload MatmulWorkload::generate(int n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  MatmulWorkload w;
  w.n = n;
  w.a.resize(static_cast<std::size_t>(n) * n);
  w.b.resize(static_cast<std::size_t>(n) * n);
  for (auto& v : w.a) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto& v : w.b) v = rng.uniform_f(-1.0f, 1.0f);
  return w;
}

void matmul_cpu(int n, const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c) {
  // Cache-aware i-k-j ordering, single thread (the paper's footnote-5
  // "CPU binary optimized only for cache usage" baseline).
  c.assign(static_cast<std::size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      const float aik = a[static_cast<std::size_t>(i) * n + k];
      const float* brow = &b[static_cast<std::size_t>(k) * n];
      float* crow = &c[static_cast<std::size_t>(i) * n];
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

LaunchStats run_matmul(Device& dev, const MatmulConfig& cfg, int n,
                       DeviceBuffer<float>& a, DeviceBuffer<float>& b,
                       DeviceBuffer<float>& c, bool functional,
                       prof::Profiler* profiler, scope::Session* scope) {
  LaunchOptions opt;
  opt.regs_per_thread = cfg.regs_per_thread();
  opt.functional = functional;
  opt.prof.sink = profiler;
  opt.scope.sink = scope;
  if (profiler != nullptr || scope != nullptr) opt.prof.kernel_name = cfg.name();

  if (cfg.variant == MatmulVariant::kNaive ||
      cfg.variant == MatmulVariant::kNaiveUnrolled) {
    G80_CHECK_MSG(n % 16 == 0, "matrix size must be a multiple of 16");
    opt.uses_sync = false;
    const Dim3 block(16, 16);
    const Dim3 grid(static_cast<unsigned>(n / 16), static_cast<unsigned>(n / 16));
    const MatmulNaiveKernel k{n, cfg.variant == MatmulVariant::kNaiveUnrolled};
    return launch(dev, grid, block, opt, k, a, b, c);
  }

  G80_CHECK_MSG(n % cfg.tile == 0,
                "matrix size " << n << " not divisible by tile " << cfg.tile
                               << " (the paper pads 12x12 tiles, §4.2)");
  if (cfg.variant == MatmulVariant::kRegisterTiled) {
    G80_CHECK_MSG(cfg.tile % 2 == 0, "register tiling needs an even tile");
    const Dim3 block(static_cast<unsigned>(cfg.tile),
                     static_cast<unsigned>(cfg.tile / 2));
    const Dim3 grid(static_cast<unsigned>(n / cfg.tile),
                    static_cast<unsigned>(n / cfg.tile));
    return launch(dev, grid, block, opt, MatmulRegTiledKernel{n, cfg.tile}, a,
                  b, c);
  }
  const Dim3 block(static_cast<unsigned>(cfg.tile), static_cast<unsigned>(cfg.tile));
  const Dim3 grid(static_cast<unsigned>(n / cfg.tile),
                  static_cast<unsigned>(n / cfg.tile));
  const MatmulTiledKernel k{n, cfg.tile,
                            cfg.variant != MatmulVariant::kTiled,
                            cfg.variant == MatmulVariant::kPrefetch};
  return launch(dev, grid, block, opt, k, a, b, c);
}

AppInfo MatmulApp::info() const {
  return AppInfo{
      .name = "Matrix Mul",
      .description = "4Kx4K dense SGEMM, the §4 optimization case study",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue after tiling+unrolling (§4.3)",
      // §4.3: 91.14 GFLOPS on a 345.6 GFLOPS peak device; kernel speedup vs
      // a cache-optimized non-SIMD CPU binary "on the order of 100X"
      // (footnote 5).
      .paper_kernel_speedup = 100.0,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult MatmulApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int n = scale == RunScale::kQuick ? 96 : 512;
  const auto w = MatmulWorkload::generate(n, /*seed=*/7);

  AppResult r;
  r.info = info();

  // --- CPU baseline ---
  std::vector<float> c_ref;
  const double host_secs =
      measure_seconds([&] { matmul_cpu(n, w.a, w.b, c_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  // --- GPU port: best variant from the §4 study ---
  dev.ledger().reset();
  auto da = dev.alloc<float>(w.a.size());
  auto db = dev.alloc<float>(w.b.size());
  auto dc = dev.alloc<float>(w.a.size());
  da.copy_from_host(w.a);
  db.copy_from_host(w.b);

  const MatmulConfig cfg{MatmulVariant::kTiledUnrolled, 16};
  const auto stats = run_matmul(dev, cfg, n, da, db, dc, /*functional=*/true);
  const auto c_gpu = dc.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate ---
  double err = 0;
  for (std::size_t i = 0; i < c_ref.size(); ++i)
    err = std::max(err, rel_err(c_gpu[i], c_ref[i], 1e-3));
  finish_validation(r, err, 2e-4);
  return r;
}

}  // namespace g80::apps
