// RC5-72 — brute-force key search (distributed.net style).
//
// Each thread tests a batch of candidate 72-bit keys: run the RC5 key
// schedule, encrypt a known plaintext, compare with the target ciphertext.
// Pure integer work with one defining quirk the paper calls out (§5.1): the
// GeForce 8800 lacks a modulus-shift (rotate) instruction, so every
// data-dependent rotate is emulated with a shift/shift/or sequence — the
// paper estimates performance "several times higher" with a native rotate,
// which bench/ablation_rotate reproduces via the native_rotate flag.
#pragma once

#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

struct Rc5Workload {
  std::uint32_t plain[2] = {0x20646557, 0x65746957};   // known plaintext
  std::uint32_t target[2] = {0, 0};                    // ciphertext to match
  std::uint64_t key_base = 0;   // low 64 bits of the key window start
  std::uint8_t key_hi = 0;      // high byte (bits 64..71), fixed per window
  std::uint32_t num_keys = 0;   // window size
  std::uint32_t planted = 0;    // offset of the hidden key (for validation)

  static Rc5Workload generate(std::uint32_t num_keys, std::uint64_t seed);
};

// Encrypts `plain` under key (key_base + offset, key_hi); used by workload
// generation, the CPU reference and (through ctx annotations) the kernel.
void rc5_encrypt_host(std::uint64_t key_lo64, std::uint8_t key_hi,
                      const std::uint32_t plain[2], std::uint32_t out[2]);

// CPU reference search: returns the matching offset (or num_keys if none)
// and fills per-key partial-match flags (low byte of ciphertext word 0).
std::uint32_t rc5_cpu(const Rc5Workload& w, std::vector<std::uint8_t>& partial);

inline constexpr int kRc5Rounds = 12;
inline constexpr int kRc5ScheduleWords = 2 * (kRc5Rounds + 1);  // 26

struct Rc5Kernel {
  Rc5Workload w;
  std::uint32_t keys_per_thread = 4;
  bool native_rotate = false;  // ablation: pretend the ISA has a rotate

  template <class Ctx>
  std::uint32_t rotl(Ctx& ctx, std::uint32_t v, std::uint32_t n) const {
    if (native_rotate) {
      ctx.ialu(1);
    } else {
      ctx.ialu(5);  // and 31, shl, sub, shr, or — the emulation sequence
    }
    n &= 31u;
    return n == 0 ? v : ((v << n) | (v >> (32u - n)));
  }

  template <class Ctx>
  void encrypt(Ctx& ctx, std::uint64_t key_lo64, std::uint8_t key_hi,
               std::uint32_t out[2]) const {
    constexpr std::uint32_t P = 0xB7E15163u, Q = 0x9E3779B9u;
    std::uint32_t L[3] = {static_cast<std::uint32_t>(key_lo64),
                          static_cast<std::uint32_t>(key_lo64 >> 32),
                          static_cast<std::uint32_t>(key_hi)};
    std::uint32_t S[kRc5ScheduleWords];
    S[0] = P;
    ctx.ialu(1);
    for (int i = 1; i < kRc5ScheduleWords; ++i) {
      S[i] = S[i - 1] + Q;
      ctx.ialu(2);
      ctx.loop_branch();
    }
    std::uint32_t A = 0, B = 0;
    int i = 0, j = 0;
    for (int k = 0; k < 3 * kRc5ScheduleWords; ++k) {
      A = S[i] = rotl(ctx, S[i] + A + B, 3);
      B = L[j] = rotl(ctx, L[j] + A + B, A + B);
      i = (i + 1) % kRc5ScheduleWords;
      j = (j + 1) % 3;
      ctx.ialu(8);  // adds + index updates
      ctx.loop_branch();
    }
    std::uint32_t a = w.plain[0] + S[0];
    std::uint32_t b = w.plain[1] + S[1];
    ctx.ialu(2);
    for (int r2 = 1; r2 <= kRc5Rounds; ++r2) {
      a = rotl(ctx, a ^ b, b) + S[2 * r2];
      b = rotl(ctx, b ^ a, a) + S[2 * r2 + 1];
      ctx.ialu(6);
      ctx.loop_branch();
    }
    out[0] = a;
    out[1] = b;
  }

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<std::uint32_t>& found,
                  DeviceBuffer<std::uint8_t>& partial) const {
    auto Found = ctx.global(found);
    auto Partial = ctx.global(partial);

    ctx.ialu(3);
    const std::uint32_t t = static_cast<std::uint32_t>(ctx.global_thread_x());
    for (std::uint32_t k = 0; k < keys_per_thread; ++k) {
      ctx.ialu(2);
      const std::uint32_t offset = t * keys_per_thread + k;
      if (!ctx.branch(offset < w.num_keys)) continue;
      std::uint32_t ct[2];
      encrypt(ctx, w.key_base + offset, w.key_hi, ct);
      // Partial-match statistics (keeps every thread's work observable).
      ctx.ialu(2);
      Partial.st(offset, static_cast<std::uint8_t>(
                             (ct[0] & 0xFFu) == (w.target[0] & 0xFFu)));
      if (ctx.branch(ct[0] == w.target[0] && ct[1] == w.target[1])) {
        Found.st(0, offset);
      }
      ctx.loop_branch();
    }
  }
};

class Rc5App : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
