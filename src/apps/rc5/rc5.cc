#include "apps/rc5/rc5.h"

#include "common/measure.h"
#include "common/rng.h"
#include "core/cpu_calibration.h"
#include "cudalite/recorder.h"

namespace g80::apps {

namespace {

// Host-side rotate/encrypt mirrors the kernel exactly (integer arithmetic is
// bit-exact, so validation demands equality).
std::uint32_t rotl_host(std::uint32_t v, std::uint32_t n) {
  n &= 31u;
  return n == 0 ? v : ((v << n) | (v >> (32u - n)));
}

}  // namespace

void rc5_encrypt_host(std::uint64_t key_lo64, std::uint8_t key_hi,
                      const std::uint32_t plain[2], std::uint32_t out[2]) {
  constexpr std::uint32_t P = 0xB7E15163u, Q = 0x9E3779B9u;
  std::uint32_t L[3] = {static_cast<std::uint32_t>(key_lo64),
                        static_cast<std::uint32_t>(key_lo64 >> 32),
                        static_cast<std::uint32_t>(key_hi)};
  std::uint32_t S[kRc5ScheduleWords];
  S[0] = P;
  for (int i = 1; i < kRc5ScheduleWords; ++i) S[i] = S[i - 1] + Q;
  std::uint32_t A = 0, B = 0;
  int i = 0, j = 0;
  for (int k = 0; k < 3 * kRc5ScheduleWords; ++k) {
    A = S[i] = rotl_host(S[i] + A + B, 3);
    B = L[j] = rotl_host(L[j] + A + B, A + B);
    i = (i + 1) % kRc5ScheduleWords;
    j = (j + 1) % 3;
  }
  std::uint32_t a = plain[0] + S[0];
  std::uint32_t b = plain[1] + S[1];
  for (int r = 1; r <= kRc5Rounds; ++r) {
    a = rotl_host(a ^ b, b) + S[2 * r];
    b = rotl_host(b ^ a, a) + S[2 * r + 1];
  }
  out[0] = a;
  out[1] = b;
}

Rc5Workload Rc5Workload::generate(std::uint32_t num_keys, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Rc5Workload w;
  w.num_keys = num_keys;
  w.key_base = rng.next_u64() & ~0xFFFFFFFFull;  // window-aligned
  w.key_hi = static_cast<std::uint8_t>(rng.next_u64());
  w.planted = static_cast<std::uint32_t>(rng.next_below(num_keys));
  rc5_encrypt_host(w.key_base + w.planted, w.key_hi, w.plain, w.target);
  return w;
}

std::uint32_t rc5_cpu(const Rc5Workload& w, std::vector<std::uint8_t>& partial) {
  partial.assign(w.num_keys, 0);
  std::uint32_t found = w.num_keys;
  for (std::uint32_t k = 0; k < w.num_keys; ++k) {
    std::uint32_t ct[2];
    rc5_encrypt_host(w.key_base + k, w.key_hi, w.plain, ct);
    partial[k] = static_cast<std::uint8_t>((ct[0] & 0xFFu) ==
                                           (w.target[0] & 0xFFu));
    if (ct[0] == w.target[0] && ct[1] == w.target[1]) found = k;
  }
  return found;
}

AppInfo Rc5App::info() const {
  return AppInfo{
      .name = "RC5-72",
      .description = "brute-force RC5 key search over a 72-bit key window",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue; variable rotates emulated "
                          "(no modulus-shift on G80, §5.1)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult Rc5App::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const std::uint32_t num_keys =
      scale == RunScale::kQuick ? (1u << 13) : (1u << 18);
  const auto w = Rc5Workload::generate(num_keys, /*seed=*/51);

  AppResult r;
  r.info = info();

  std::vector<std::uint8_t> partial_ref;
  std::uint32_t found_ref = 0;
  const double host_secs =
      measure_seconds([&] { found_ref = rc5_cpu(w, partial_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  dev.ledger().reset();
  auto dfound = dev.alloc<std::uint32_t>(1);
  dfound.fill(w.num_keys);
  auto dpartial = dev.alloc<std::uint8_t>(w.num_keys);

  Rc5Kernel kernel;
  kernel.w = w;
  kernel.keys_per_thread = 4;

  LaunchOptions opt;
  opt.regs_per_thread = 42;  // the 26-word schedule largely lives in registers
  opt.uses_sync = false;
  const std::uint32_t threads_total =
      (w.num_keys + kernel.keys_per_thread - 1) / kernel.keys_per_thread;
  const Dim3 block(192);  // 42 regs x 192 thr: one block short of the file
  const Dim3 grid((threads_total + block.x - 1) / block.x);
  const auto stats = launch(dev, grid, block, opt, kernel, dfound, dpartial);

  const auto found_gpu = dfound.copy_to_host();
  const auto partial_gpu = dpartial.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // Bit-exact integer results: demand equality.
  double err = 0;
  if (found_gpu[0] != found_ref || found_ref != w.planted) err = 1.0;
  for (std::uint32_t k = 0; k < w.num_keys; ++k)
    if (partial_gpu[k] != partial_ref[k]) err = 1.0;
  finish_validation(r, err, 0.0);
  return r;
}

}  // namespace g80::apps
