#include "apps/suite.h"

#include "apps/cp/cp.h"
#include "apps/fdtd/fdtd.h"
#include "apps/fem/fem.h"
#include "apps/h264/h264.h"
#include "apps/pns/pns.h"
#include "apps/rpes/rpes.h"
#include "apps/lbm/lbm.h"
#include "apps/rc5/rc5.h"
#include "apps/tpacf/tpacf.h"
#include "apps/matmul/matmul.h"
#include "apps/mri/mri_fhd.h"
#include "apps/mri/mri_q.h"
#include "apps/saxpy/saxpy.h"

namespace g80::apps {

std::vector<std::unique_ptr<App>> make_suite() {
  std::vector<std::unique_ptr<App>> suite;
  suite.push_back(std::make_unique<MatmulApp>());
  suite.push_back(std::make_unique<SaxpyApp>());
  suite.push_back(std::make_unique<MriQApp>());
  suite.push_back(std::make_unique<MriFhdApp>());
  suite.push_back(std::make_unique<CpApp>());
  suite.push_back(std::make_unique<TpacfApp>());
  suite.push_back(std::make_unique<Rc5App>());
  suite.push_back(std::make_unique<LbmApp>());
  suite.push_back(std::make_unique<FdtdApp>());
  suite.push_back(std::make_unique<FemApp>());
  suite.push_back(std::make_unique<PnsApp>());
  suite.push_back(std::make_unique<RpesApp>());
  suite.push_back(std::make_unique<H264App>());
  return suite;
}

}  // namespace g80::apps
