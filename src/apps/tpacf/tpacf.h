// TPACF — two-point angular correlation function.
//
// Computes a histogram of angular separations between pairs of points on
// the celestial sphere (data-data plus data-random cross pairs).  The GPU
// port follows the structure the paper describes for its highest-speedup
// group: tiles of points staged through shared memory, per-thread private
// histograms laid out bin-major in shared memory so each lane owns a bank
// (the §5.2 "care must be taken so that threads in the same warp access
// different banks" optimization), and a cooperative reduction at the end.
// Bin selection is a binary search over precomputed dot-product thresholds
// in constant memory — the suite's canonical source of branch divergence.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

inline constexpr int kTpacfBins = 16;
inline constexpr int kTpacfBlockThreads = 64;

struct TpacfWorkload {
  // Unit vectors on the sphere (SoA).
  std::vector<float> x, y, z;
  // Bin edges as descending cos(theta) thresholds, kTpacfBins-1 of them.
  std::vector<float> bin_edges;

  static TpacfWorkload generate(int points, std::uint64_t seed);
};

void tpacf_cpu(const TpacfWorkload& w,
               std::array<std::uint64_t, kTpacfBins>& hist);

// Maps a dot product to its bin exactly as the kernel's binary search does.
int tpacf_bin(const std::vector<float>& edges, float dot);

// Shared-memory layout of the per-thread histograms — the §5.2 bank-conflict
// knob (bench/ablation_bankconflict):
//   kBinMajor    hist[bin][thread]: lane = bank, conflict-free (the paper's
//                "care must be taken so that threads in the same warp access
//                different banks" resolution)
//   kThreadMajor hist[thread][bin]: with 16 bins, every lane of a half-warp
//                maps its whole histogram onto one bank => 16-way conflicts
enum class TpacfHistLayout { kBinMajor, kThreadMajor };

struct TpacfKernel {
  int num_points = 0;
  TpacfHistLayout hist_layout = TpacfHistLayout::kBinMajor;

  // Each block owns kTpacfBlockThreads consecutive "i" points and loops over
  // all "j" points in shared-memory tiles; every thread accumulates a
  // private histogram in shared memory (layout hist[bin][thread] =>
  // bank = thread % 16, conflict-free), then the block reduces into global
  // memory (one partial histogram per block; host sums).
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& x, DeviceBuffer<float>& y,
                  DeviceBuffer<float>& z, const ConstantBuffer<float>& edges,
                  DeviceBuffer<unsigned>& block_hist) const {
    auto X = ctx.global(x);
    auto Y = ctx.global(y);
    auto Z = ctx.global(z);
    auto E = ctx.constant(edges);
    auto Out = ctx.global(block_hist);

    const int nt = kTpacfBlockThreads;
    auto tile =
        ctx.template shared<float>(3 * static_cast<std::size_t>(nt));
    auto hist = ctx.template shared<unsigned>(
        static_cast<std::size_t>(kTpacfBins) * nt);

    ctx.ialu(3);
    const int tid = static_cast<int>(ctx.thread_idx().x);
    const int i = static_cast<int>(ctx.block_idx().x) * nt + tid;

    const auto hist_slot = [&](int b) {
      return hist_layout == TpacfHistLayout::kBinMajor
                 ? static_cast<std::size_t>(b) * nt + tid
                 : static_cast<std::size_t>(tid) * kTpacfBins + b;
    };

    // Zero the private histogram.
    for (int b = 0; b < kTpacfBins; ++b) {
      hist.st(hist_slot(b), 0u);
      ctx.ialu(1);
      ctx.loop_branch();
    }

    const bool have_i = i < num_points;
    float xi = 0, yi = 0, zi = 0;
    if (ctx.branch(have_i)) {
      xi = X.ld(i);
      yi = Y.ld(i);
      zi = Z.ld(i);
    }

    for (int base = 0; base < num_points; base += nt) {
      // Stage a tile of j points (coalesced loads).
      ctx.ialu(2);
      const int j = base + tid;
      if (ctx.branch(j < num_points)) {
        tile.st(static_cast<std::size_t>(tid), X.ld(j));
        tile.st(static_cast<std::size_t>(nt + tid), Y.ld(j));
        tile.st(static_cast<std::size_t>(2 * nt + tid), Z.ld(j));
      }
      ctx.sync();

      if (have_i) {
        const int limit = std::min(nt, num_points - base);
        for (int t = 0; t < limit; ++t) {
          ctx.ialu(2);
          const int jj = base + t;
          // Count ordered pairs i < j once.
          if (ctx.branch(jj > i)) {
            const float dot = ctx.mad(
                xi, tile.ld(static_cast<std::size_t>(t)),
                ctx.mad(yi, tile.ld(static_cast<std::size_t>(nt + t)),
                        ctx.mul(zi, tile.ld(static_cast<std::size_t>(2 * nt + t)))));
            // Binary search over descending thresholds: divergent by design.
            int lo = 0, hi = kTpacfBins - 1;
            while (lo < hi) {
              ctx.ialu(2);
              const int mid = (lo + hi) / 2;
              if (ctx.branch(ctx.fcmp(dot >= E.ld(mid)))) {
                hi = mid;
              } else {
                lo = mid + 1;
              }
              ctx.loop_branch();
            }
            ctx.ialu(2);
            const std::size_t slot = hist_slot(lo);
            hist.st(slot, hist.ld(slot) + 1u);
          }
          ctx.loop_branch();
        }
      }
      ctx.sync();
      ctx.ialu(1);
      ctx.loop_branch();
    }

    // Block-level reduction: thread t sums bin t's per-thread counters
    // (kTpacfBins <= nt), then writes the block's partial histogram.
    if (ctx.branch(tid < kTpacfBins)) {
      unsigned total = 0;
      for (int t = 0; t < nt; ++t) {
        ctx.ialu(2);
        total += hist.ld(hist_layout == TpacfHistLayout::kBinMajor
                             ? static_cast<std::size_t>(tid) * nt + t
                             : static_cast<std::size_t>(t) * kTpacfBins + tid);
        ctx.loop_branch();
      }
      Out.st(static_cast<std::size_t>(ctx.block_idx().x) * kTpacfBins + tid,
             total);
    }
  }
};

class TpacfApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
