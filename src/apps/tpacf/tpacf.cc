#include "apps/tpacf/tpacf.h"

#include <algorithm>
#include <cmath>

#include "common/measure.h"
#include "common/rng.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

TpacfWorkload TpacfWorkload::generate(int points, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TpacfWorkload w;
  w.x.resize(points);
  w.y.resize(points);
  w.z.resize(points);
  for (int i = 0; i < points; ++i) {
    // Uniform on the sphere via normalized Gaussians.
    float gx, gy, gz, n2;
    do {
      gx = static_cast<float>(rng.normal());
      gy = static_cast<float>(rng.normal());
      gz = static_cast<float>(rng.normal());
      n2 = gx * gx + gy * gy + gz * gz;
    } while (n2 < 1e-6f);
    const float inv = 1.0f / std::sqrt(n2);
    w.x[i] = gx * inv;
    w.y[i] = gy * inv;
    w.z[i] = gz * inv;
  }
  // Logarithmic angular bins from 0.01 rad to pi, expressed as descending
  // cos(theta) thresholds (bin 0 = smallest separations).
  w.bin_edges.resize(kTpacfBins - 1);
  const float lo = 0.01f, hi = static_cast<float>(M_PI);
  for (int b = 0; b < kTpacfBins - 1; ++b) {
    const float t = static_cast<float>(b + 1) / kTpacfBins;
    const float ang = lo * std::pow(hi / lo, t);
    w.bin_edges[b] = std::cos(ang);
  }
  std::sort(w.bin_edges.begin(), w.bin_edges.end(), std::greater<float>());
  return w;
}

int tpacf_bin(const std::vector<float>& edges, float dot) {
  int lo = 0, hi = kTpacfBins - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (dot >= edges[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void tpacf_cpu(const TpacfWorkload& w,
               std::array<std::uint64_t, kTpacfBins>& hist) {
  hist.fill(0);
  const int n = static_cast<int>(w.x.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const float dot =
          w.x[i] * w.x[j] + (w.y[i] * w.y[j] + w.z[i] * w.z[j]);
      ++hist[static_cast<std::size_t>(tpacf_bin(w.bin_edges, dot))];
    }
  }
}

AppInfo TpacfApp::info() const {
  return AppInfo{
      .name = "TPACF",
      .description = "two-point angular correlation histogram of sky points",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue (low global ratio; shared-memory "
                          "histograms avoid bank conflicts, §5.2)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult TpacfApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int points = scale == RunScale::kQuick ? 512 : 4096;
  const auto w = TpacfWorkload::generate(points, /*seed=*/31);

  AppResult r;
  r.info = info();

  std::array<std::uint64_t, kTpacfBins> hist_ref{};
  const double host_secs = measure_seconds([&] { tpacf_cpu(w, hist_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  dev.ledger().reset();
  auto dx = dev.alloc<float>(points);
  auto dy = dev.alloc<float>(points);
  auto dz = dev.alloc<float>(points);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto de = dev.alloc_constant<float>(w.bin_edges.size());
  de.copy_from_host(w.bin_edges);

  const unsigned num_blocks =
      (points + kTpacfBlockThreads - 1) / kTpacfBlockThreads;
  auto dhist = dev.alloc<unsigned>(static_cast<std::size_t>(num_blocks) *
                                   kTpacfBins);

  LaunchOptions opt;
  opt.regs_per_thread = 14;
  const auto stats = launch(dev, Dim3(num_blocks), Dim3(kTpacfBlockThreads),
                            opt, TpacfKernel{points}, dx, dy, dz, de, dhist);
  const auto partials = dhist.copy_to_host();

  // Host-side merge of per-block partial histograms (the serial tail).
  Timer merge_timer;
  std::array<std::uint64_t, kTpacfBins> hist_gpu{};
  for (unsigned b = 0; b < num_blocks; ++b)
    for (int k = 0; k < kTpacfBins; ++k)
      hist_gpu[static_cast<std::size_t>(k)] +=
          partials[static_cast<std::size_t>(b) * kTpacfBins + k];
  r.cpu_other_seconds = to_opteron_seconds(merge_timer.seconds());

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // Histograms are integer counts: require exact equality.
  double err = 0;
  for (int k = 0; k < kTpacfBins; ++k) {
    if (hist_gpu[static_cast<std::size_t>(k)] !=
        hist_ref[static_cast<std::size_t>(k)])
      err = 1.0;
  }
  finish_validation(r, err, 0.0);
  return r;
}

}  // namespace g80::apps
