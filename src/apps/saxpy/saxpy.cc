#include "apps/saxpy/saxpy.h"

#include "common/measure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

SaxpyWorkload SaxpyWorkload::generate(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  SaxpyWorkload w;
  w.a = rng.uniform_f(0.5f, 2.0f);
  w.x.resize(n);
  w.y.resize(n);
  for (auto& v : w.x) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto& v : w.y) v = rng.uniform_f(-1.0f, 1.0f);
  return w;
}

void saxpy_cpu(float a, const std::vector<float>& x,
               const std::vector<float>& y, std::vector<float>& out) {
  out.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = a * x[i] + y[i];
}

AppInfo SaxpyApp::info() const {
  return AppInfo{
      .name = "SAXPY",
      .description = "single-precision a*X+Y over large vectors",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "global memory bandwidth (high memory-to-compute "
                          "ratio, Table 3 / §5.1)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult SaxpyApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const std::size_t n = scale == RunScale::kQuick ? (1u << 13) : (1u << 22);
  const auto w = SaxpyWorkload::generate(n, /*seed=*/42);

  AppResult r;
  r.info = info();

  // --- CPU baseline ---
  std::vector<float> y_ref;
  const double host_secs =
      measure_seconds([&] { saxpy_cpu(w.a, w.x, w.y, y_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;  // the whole application is the kernel

  // --- GPU port ---
  dev.ledger().reset();
  auto dx = dev.alloc<float>(n);
  auto dy = dev.alloc<float>(n);
  auto dout = dev.alloc<float>(n);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);

  LaunchOptions opt;
  opt.regs_per_thread = 5;
  opt.uses_sync = false;
  const Dim3 block(256);
  const Dim3 grid(static_cast<unsigned>((n + block.x - 1) / block.x));
  const auto stats = launch(dev, grid, block, opt,
                            SaxpyKernel{w.a, static_cast<int>(n)}, dx, dy, dout);
  const auto y_gpu = dout.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate ---
  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, rel_err(y_gpu[i], y_ref[i]));
  finish_validation(r, err, 1e-6);
  return r;
}

}  // namespace g80::apps
