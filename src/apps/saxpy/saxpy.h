// SAXPY (y = a*x + y): the suite's streaming kernel.
//
// Paper Table 2/3: trivially parallel, one FP multiply-add per two loads and
// a store — the highest memory-to-compute ratio in the suite.  The paper
// reports it saturates memory bandwidth despite having (with FDTD) the most
// simultaneously active threads; our port reproduces that bottleneck class.
#pragma once

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

struct SaxpyWorkload {
  float a = 0;
  std::vector<float> x, y;

  static SaxpyWorkload generate(std::size_t n, std::uint64_t seed);
};

// CPU reference: single-thread scalar loop (out-of-place: the simulator's
// two-pass launch requires block-idempotent kernels, so out = a*x + y).
void saxpy_cpu(float a, const std::vector<float>& x,
               const std::vector<float>& y, std::vector<float>& out);

struct SaxpyKernel {
  float a = 0;
  int n = 0;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& x, DeviceBuffer<float>& y,
                  DeviceBuffer<float>& out) const {
    auto X = ctx.global(x);
    auto Y = ctx.global(y);
    auto Out = ctx.global(out);
    ctx.ialu(2);  // i = blockIdx.x * blockDim.x + threadIdx.x
    const int i = ctx.global_thread_x();
    if (ctx.branch(i < n)) {
      Out.st(i, ctx.mad(a, X.ld(i), Y.ld(i)));
    }
  }
};

class SaxpyApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
