// CP — Coulombic potential (direct summation).
//
// Computes the electrostatic potential on a 2-D grid slice from a cloud of
// point charges: V(p) = sum_a q_a / |p - a|.  The paper's CP port (from the
// molecular-visualization work of Stone et al. [24]) is the archetypal
// compute-bound kernel: one thread per grid point, the atom list broadcast
// from constant memory, one rsqrt on the SFU per atom — very low global
// access ratio, near-peak utilization (Table 3's high-speedup group).
#pragma once

#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

struct CpWorkload {
  int grid_dim = 0;           // potential grid is grid_dim x grid_dim
  float spacing = 0.5f;       // grid spacing (Angstrom-ish)
  float slice_z = 0.0f;
  std::vector<Float4> atoms;  // x, y, z, charge

  static CpWorkload generate(int grid_dim, int num_atoms, std::uint64_t seed);
};

void cp_cpu(const CpWorkload& w, std::vector<float>& potential);

struct CpKernel {
  int grid_dim = 0;
  float spacing = 0;
  float slice_z = 0;

  template <class Ctx>
  void operator()(Ctx& ctx, const ConstantBuffer<Float4>& atoms,
                  DeviceBuffer<float>& out) const {
    auto Atoms = ctx.constant(atoms);
    auto Out = ctx.global(out);
    body(ctx, Atoms, Out);
  }

  // Ablation variant: the same kernel with the atom list left in global
  // memory (every iteration pays a global load instead of a constant-cache
  // broadcast) — bench/ablation_constant.
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<Float4>& atoms,
                  DeviceBuffer<float>& out) const {
    auto Atoms = ctx.global(atoms);
    auto Out = ctx.global(out);
    body(ctx, Atoms, Out);
  }

 private:
  template <class Ctx, class AtomView, class OutView>
  void body(Ctx& ctx, AtomView& Atoms, OutView& Out) const {

    ctx.ialu(4);
    const int ix = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x +
                                    ctx.thread_idx().x);
    const int iy = static_cast<int>(ctx.block_idx().y * ctx.block_dim().y +
                                    ctx.thread_idx().y);
    const float px = ctx.mul(static_cast<float>(ix), spacing);
    const float py = ctx.mul(static_cast<float>(iy), spacing);

    float v = 0.0f;
    for (std::size_t a = 0; a < Atoms.size(); ++a) {
      const Float4 atom = Atoms.ld(a);  // 16 B broadcast from constant cache
      const float dx = ctx.sub(px, atom.x);
      const float dy = ctx.sub(py, atom.y);
      const float dz = ctx.sub(slice_z, atom.z);
      const float r2 = ctx.mad(dx, dx, ctx.mad(dy, dy, ctx.mul(dz, dz)));
      v = ctx.mad(atom.w, ctx.rsqrtf(r2), v);
      ctx.ialu(1);  // a++
      ctx.loop_branch();
    }
    ctx.ialu(1);
    Out.st(static_cast<std::size_t>(iy) * grid_dim + ix, v);
  }
};

class CpApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
