#include "apps/cp/cp.h"

#include <cmath>

#include "common/measure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

CpWorkload CpWorkload::generate(int grid_dim, int num_atoms, std::uint64_t seed) {
  SplitMix64 rng(seed);
  CpWorkload w;
  w.grid_dim = grid_dim;
  w.slice_z = 4.0f;  // off-plane slice keeps r2 bounded away from zero
  const float extent = w.spacing * static_cast<float>(grid_dim);
  w.atoms.resize(num_atoms);
  for (auto& a : w.atoms) {
    a.x = rng.uniform_f(0.0f, extent);
    a.y = rng.uniform_f(0.0f, extent);
    a.z = rng.uniform_f(-2.0f, 2.0f);
    a.w = rng.uniform_f(-1.0f, 1.0f);  // charge
  }
  return w;
}

void cp_cpu(const CpWorkload& w, std::vector<float>& potential) {
  potential.assign(static_cast<std::size_t>(w.grid_dim) * w.grid_dim, 0.0f);
  for (int iy = 0; iy < w.grid_dim; ++iy) {
    for (int ix = 0; ix < w.grid_dim; ++ix) {
      const float px = static_cast<float>(ix) * w.spacing;
      const float py = static_cast<float>(iy) * w.spacing;
      float v = 0.0f;
      for (const auto& a : w.atoms) {
        const float dx = px - a.x;
        const float dy = py - a.y;
        const float dz = w.slice_z - a.z;
        const float r2 = dx * dx + (dy * dy + dz * dz);
        v = a.w * (1.0f / std::sqrt(r2)) + v;
      }
      potential[static_cast<std::size_t>(iy) * w.grid_dim + ix] = v;
    }
  }
}

AppInfo CpApp::info() const {
  return AppInfo{
      .name = "CP",
      .description = "Coulombic potential grid from point charges",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue (low global access ratio, §5.1)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult CpApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int grid_dim = scale == RunScale::kQuick ? 64 : 256;
  const int num_atoms = scale == RunScale::kQuick ? 128 : 1024;
  const auto w = CpWorkload::generate(grid_dim, num_atoms, /*seed=*/11);

  AppResult r;
  r.info = info();

  // --- CPU baseline ---
  std::vector<float> v_ref;
  const double host_secs = measure_seconds([&] { cp_cpu(w, v_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  // --- GPU port ---
  dev.ledger().reset();
  auto atoms = dev.alloc_constant<Float4>(w.atoms.size());
  atoms.copy_from_host(w.atoms);
  auto out = dev.alloc<float>(static_cast<std::size_t>(grid_dim) * grid_dim);

  LaunchOptions opt;
  opt.regs_per_thread = 10;
  opt.uses_sync = false;
  const Dim3 block(16, 16);
  const Dim3 grid(static_cast<unsigned>(grid_dim / 16),
                  static_cast<unsigned>(grid_dim / 16));
  const auto stats = launch(dev, grid, block, opt,
                            CpKernel{grid_dim, w.spacing, w.slice_z}, atoms, out);
  const auto v_gpu = out.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate ---
  double err = 0;
  for (std::size_t i = 0; i < v_ref.size(); ++i)
    err = std::max(err, rel_err(v_gpu[i], v_ref[i], 1e-3));
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
