// MRI-FHD — computation of F^H d for non-Cartesian MRI reconstruction.
//
// Structurally the sibling of MRI-Q: for every voxel, accumulate the
// acquired k-space data rotated by the conjugate Fourier phase,
//   FHd(x) = sum_k conj(exp(i 2*pi k.x)) * rho(k)
// i.e. two multiply-adds more per sample than Q.  Same constant-memory
// broadcast structure, same SFU dependence; the paper reports it just below
// MRI-Q in the speedup ranking.
#pragma once

#include "apps/mri/mri_q.h"

namespace g80::apps {

void mri_fhd_cpu(const MriWorkload& w, std::vector<float>& fr,
                 std::vector<float>& fi);

struct MriFhdKernel {
  int num_voxels = 0;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& x, DeviceBuffer<float>& y,
                  DeviceBuffer<float>& z, const ConstantBuffer<Float4>& samples,
                  const ConstantBuffer<Float2>& rho, DeviceBuffer<float>& fr,
                  DeviceBuffer<float>& fi) const {
    auto X = ctx.global(x);
    auto Y = ctx.global(y);
    auto Z = ctx.global(z);
    auto K = ctx.constant(samples);
    auto Rho = ctx.constant(rho);
    auto Fr = ctx.global(fr);
    auto Fi = ctx.global(fi);

    ctx.ialu(2);
    const int v = ctx.global_thread_x();
    if (!ctx.branch(v < num_voxels)) return;
    const float px = X.ld(v), py = Y.ld(v), pz = Z.ld(v);

    float sum_r = 0.0f, sum_i = 0.0f;
    for (std::size_t s = 0; s < K.size(); ++s) {
      const Float4 k = K.ld(s);
      const Float2 d = Rho.ld(s);
      const float arg = ctx.mul(
          MriQKernel::kTwoPi,
          ctx.mad(k.x, px, ctx.mad(k.y, py, ctx.mul(k.z, pz))));
      const float c = ctx.cosf(arg);
      const float sn = ctx.sinf(arg);
      // (c - i*s) * (dr + i*di):
      sum_r = ctx.mad(d.x, c, ctx.mad(d.y, sn, sum_r));
      sum_i = ctx.mad(d.y, c, ctx.mad(ctx.sub(0.0f, d.x), sn, sum_i));
      ctx.ialu(1);
      ctx.loop_branch();
    }
    Fr.st(v, sum_r);
    Fi.st(v, sum_i);
  }
};

class MriFhdApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
