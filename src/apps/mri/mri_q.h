// MRI-Q — computation of the Q matrix for non-Cartesian MRI reconstruction
// (Stone et al. [25]).
//
// For every voxel x:  Q(x) = sum_k |phi(k)|^2 * exp(i * 2*pi * k.x),
// accumulated as separate real/imaginary sums with one sin and one cos per
// (voxel, sample) pair.  The paper singles the MRI kernels out for the
// largest speedups in the suite (457X kernel / 431X application) and
// attributes ~30% of that to the SFUs executing the trigonometry; the
// ablation_sfu bench reproduces that decomposition.  K-space sample
// parameters are broadcast from constant memory.
#pragma once

#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

struct MriWorkload {
  // Voxel coordinates (SoA for coalesced loads).
  std::vector<float> x, y, z;
  // K-space trajectory samples: kx, ky, kz, and |phi|^2 magnitude.
  std::vector<Float4> samples;
  // Acquired data (used by FHD only): real/imag parts per sample.
  std::vector<Float2> rho;

  static MriWorkload generate(int voxels, int samples, std::uint64_t seed);
};

void mri_q_cpu(const MriWorkload& w, std::vector<float>& qr,
               std::vector<float>& qi);

struct MriQKernel {
  int num_voxels = 0;
  bool use_sfu = true;  // ablation hook: false models CPU-library-style trig

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& x, DeviceBuffer<float>& y,
                  DeviceBuffer<float>& z, const ConstantBuffer<Float4>& samples,
                  DeviceBuffer<float>& qr, DeviceBuffer<float>& qi) const {
    auto X = ctx.global(x);
    auto Y = ctx.global(y);
    auto Z = ctx.global(z);
    auto K = ctx.constant(samples);
    auto Qr = ctx.global(qr);
    auto Qi = ctx.global(qi);

    ctx.ialu(2);
    const int v = ctx.global_thread_x();
    if (!ctx.branch(v < num_voxels)) return;
    const float px = X.ld(v), py = Y.ld(v), pz = Z.ld(v);

    float sum_r = 0.0f, sum_i = 0.0f;
    for (std::size_t s = 0; s < K.size(); ++s) {
      const Float4 k = K.ld(s);  // broadcast
      const float arg = ctx.mul(
          kTwoPi, ctx.mad(k.x, px, ctx.mad(k.y, py, ctx.mul(k.z, pz))));
      float c, sn;
      if (use_sfu) {
        c = ctx.cosf(arg);
        sn = ctx.sinf(arg);
      } else {
        // Software trig: the instruction cost a CPU-style polynomial
        // evaluation would pay on the SPs (range reduction + degree-7
        // Horner, ~20 ops each) — the ablation's counterfactual.
        c = software_cos(ctx, arg);
        sn = software_sin(ctx, arg);
      }
      sum_r = ctx.mad(k.w, c, sum_r);
      sum_i = ctx.mad(k.w, sn, sum_i);
      ctx.ialu(1);
      ctx.loop_branch();
    }
    Qr.st(v, sum_r);
    Qi.st(v, sum_i);
  }

  static constexpr float kTwoPi = 6.2831853071795864769f;

 private:
  // Issue cost of a software polynomial evaluation (range reduction +
  // degree-7 Horner + sign fixup, ~20 SP instructions) charged as generic
  // issue slots so the achieved-GFLOPS metric still counts one flop per
  // transcendental result, matching how the SFU path is counted.
  template <class Ctx>
  static float software_cos(Ctx& ctx, float arg) {
    ctx.misc(20);
    ctx.rec().flops(1);
    return std::cos(arg);
  }
  template <class Ctx>
  static float software_sin(Ctx& ctx, float arg) {
    ctx.misc(20);
    ctx.rec().flops(1);
    return std::sin(arg);
  }
};

class MriQApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
