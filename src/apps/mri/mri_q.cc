#include "apps/mri/mri_q.h"

#include <cmath>

#include "common/measure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

MriWorkload MriWorkload::generate(int voxels, int samples, std::uint64_t seed) {
  SplitMix64 rng(seed);
  MriWorkload w;
  w.x.resize(voxels);
  w.y.resize(voxels);
  w.z.resize(voxels);
  for (int i = 0; i < voxels; ++i) {
    w.x[i] = rng.uniform_f(-0.5f, 0.5f);
    w.y[i] = rng.uniform_f(-0.5f, 0.5f);
    w.z[i] = rng.uniform_f(-0.5f, 0.5f);
  }
  w.samples.resize(samples);
  w.rho.resize(samples);
  for (int s = 0; s < samples; ++s) {
    // Spiral-ish trajectory through k-space.
    const float t = static_cast<float>(s) / static_cast<float>(samples);
    const float ang = 32.0f * t;
    w.samples[s] = {t * std::cos(ang), t * std::sin(ang),
                    rng.uniform_f(-0.3f, 0.3f), rng.uniform_f(0.1f, 1.0f)};
    w.rho[s] = {rng.uniform_f(-1.0f, 1.0f), rng.uniform_f(-1.0f, 1.0f)};
  }
  return w;
}

void mri_q_cpu(const MriWorkload& w, std::vector<float>& qr,
               std::vector<float>& qi) {
  const std::size_t nv = w.x.size();
  qr.assign(nv, 0.0f);
  qi.assign(nv, 0.0f);
  for (std::size_t v = 0; v < nv; ++v) {
    float sum_r = 0.0f, sum_i = 0.0f;
    for (const auto& k : w.samples) {
      const float arg = MriQKernel::kTwoPi *
                        (k.x * w.x[v] + (k.y * w.y[v] + k.z * w.z[v]));
      sum_r = k.w * std::cos(arg) + sum_r;
      sum_i = k.w * std::sin(arg) + sum_i;
    }
    qr[v] = sum_r;
    qi[v] = sum_i;
  }
}

AppInfo MriQApp::info() const {
  return AppInfo{
      .name = "MRI-Q",
      .description = "Q-matrix for non-Cartesian MRI reconstruction",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue (SFU-heavy, low global ratio)",
      // §1/§5.1: the suite's maximum — 457X kernel, 431X application.
      .paper_kernel_speedup = 457.0,
      .paper_app_speedup = 431.0,
  };
}

AppResult MriQApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int voxels = scale == RunScale::kQuick ? 1024 : 8192;
  const int samples = scale == RunScale::kQuick ? 128 : 1024;
  const auto w = MriWorkload::generate(voxels, samples, /*seed=*/21);

  AppResult r;
  r.info = info();

  // --- CPU baseline (the paper spent real effort making this fair: ~4.3x
  // over naive; our reference is already the tight loop form) ---
  std::vector<float> qr_ref, qi_ref;
  const double host_secs = measure_seconds([&] { mri_q_cpu(w, qr_ref, qi_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  // --- GPU port ---
  dev.ledger().reset();
  auto dx = dev.alloc<float>(voxels);
  auto dy = dev.alloc<float>(voxels);
  auto dz = dev.alloc<float>(voxels);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto dk = dev.alloc_constant<Float4>(w.samples.size());
  dk.copy_from_host(w.samples);
  auto dqr = dev.alloc<float>(voxels);
  auto dqi = dev.alloc<float>(voxels);

  LaunchOptions opt;
  opt.regs_per_thread = 11;
  opt.uses_sync = false;
  const Dim3 block(256);
  const Dim3 grid(static_cast<unsigned>((voxels + 255) / 256));
  const auto stats = launch(dev, grid, block, opt, MriQKernel{voxels, true},
                            dx, dy, dz, dk, dqr, dqi);
  const auto qr_gpu = dqr.copy_to_host();
  const auto qi_gpu = dqi.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate ---
  double err = 0;
  for (int v = 0; v < voxels; ++v) {
    err = std::max(err, rel_err(qr_gpu[v], qr_ref[v], 1e-2));
    err = std::max(err, rel_err(qi_gpu[v], qi_ref[v], 1e-2));
  }
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
