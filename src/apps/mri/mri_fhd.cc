#include "apps/mri/mri_fhd.h"

#include <cmath>

#include "common/measure.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

void mri_fhd_cpu(const MriWorkload& w, std::vector<float>& fr,
                 std::vector<float>& fi) {
  const std::size_t nv = w.x.size();
  fr.assign(nv, 0.0f);
  fi.assign(nv, 0.0f);
  for (std::size_t v = 0; v < nv; ++v) {
    float sum_r = 0.0f, sum_i = 0.0f;
    for (std::size_t s = 0; s < w.samples.size(); ++s) {
      const auto& k = w.samples[s];
      const auto& d = w.rho[s];
      const float arg = MriQKernel::kTwoPi *
                        (k.x * w.x[v] + (k.y * w.y[v] + k.z * w.z[v]));
      const float c = std::cos(arg);
      const float sn = std::sin(arg);
      sum_r = d.x * c + (d.y * sn + sum_r);
      sum_i = d.y * c + ((0.0f - d.x) * sn + sum_i);
    }
    fr[v] = sum_r;
    fi[v] = sum_i;
  }
}

AppInfo MriFhdApp::info() const {
  return AppInfo{
      .name = "MRI-FHD",
      .description = "F^H d vector for non-Cartesian MRI reconstruction",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "instruction issue (SFU-heavy, low global ratio)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult MriFhdApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int voxels = scale == RunScale::kQuick ? 1024 : 8192;
  const int samples = scale == RunScale::kQuick ? 128 : 1024;
  const auto w = MriWorkload::generate(voxels, samples, /*seed=*/22);

  AppResult r;
  r.info = info();

  std::vector<float> fr_ref, fi_ref;
  const double host_secs =
      measure_seconds([&] { mri_fhd_cpu(w, fr_ref, fi_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  dev.ledger().reset();
  auto dx = dev.alloc<float>(voxels);
  auto dy = dev.alloc<float>(voxels);
  auto dz = dev.alloc<float>(voxels);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto dk = dev.alloc_constant<Float4>(w.samples.size());
  dk.copy_from_host(w.samples);
  auto drho = dev.alloc_constant<Float2>(w.rho.size());
  drho.copy_from_host(w.rho);
  auto dfr = dev.alloc<float>(voxels);
  auto dfi = dev.alloc<float>(voxels);

  LaunchOptions opt;
  opt.regs_per_thread = 12;
  opt.uses_sync = false;
  const Dim3 block(256);
  const Dim3 grid(static_cast<unsigned>((voxels + 255) / 256));
  const auto stats = launch(dev, grid, block, opt, MriFhdKernel{voxels},
                            dx, dy, dz, dk, drho, dfr, dfi);
  const auto fr_gpu = dfr.copy_to_host();
  const auto fi_gpu = dfi.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  double err = 0;
  for (int v = 0; v < voxels; ++v) {
    err = std::max(err, rel_err(fr_gpu[v], fr_ref[v], 1e-2));
    err = std::max(err, rel_err(fi_gpu[v], fi_ref[v], 1e-2));
  }
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
