// PNS — Petri net simulation.
//
// Each GPU thread runs an independent stochastic simulation of the same
// Petri net (a replicated Monte-Carlo experiment): repeatedly pick a random
// transition, test whether its input places hold tokens, and fire it.  Per
// the paper (§5.1), PNS is the suite's "one simulation per thread" design —
// no inter-thread communication at all — whose thread count is bounded by
// per-simulation state in *global* memory (Table 3's capacity bottleneck),
// and whose read-only net-structure tables are served from the texture
// cache (the §5.2 optimization worth 2.8x over global-only access,
// reproduced by bench/ablation_texture).
//
// Randomness is a counter-based generator (a pure function of seed and
// draw index), so CPU and GPU trajectories are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

inline constexpr int kPnsPlaces = 64;
inline constexpr int kPnsTransitions = 64;
inline constexpr int kPnsArity = 2;  // input and output places per transition

struct PnsNet {
  // Structure tables (read-only): transition t consumes from in[t*2+k] and
  // produces into out[t*2+k].
  std::vector<std::int32_t> in;   // kPnsTransitions * kPnsArity
  std::vector<std::int32_t> out;  // kPnsTransitions * kPnsArity
  std::vector<std::int32_t> initial_marking;  // kPnsPlaces
  std::uint64_t rng_seed = 0;

  static PnsNet generate(std::uint64_t seed);
};

// Simulates one replica `sim` for `steps` steps; writes the final marking
// (kPnsPlaces ints) and returns the number of fired transitions.
std::int32_t pns_simulate_cpu(const PnsNet& net, int sim, int steps,
                              std::int32_t* marking_out);

enum class PnsTableSpace { kGlobal, kTexture };

struct PnsKernel {
  int num_sims = 0;
  int steps = 0;
  std::uint64_t rng_seed = 0;
  PnsTableSpace table_space = PnsTableSpace::kTexture;

  // Counter-based draw identical to CounterRng::at (annotated).
  template <class Ctx>
  static std::uint64_t draw(Ctx& ctx, std::uint64_t seed, std::uint64_t counter) {
    ctx.ialu(12);  // two 64-bit multiply-mix rounds on 32-bit hardware
    ctx.misc(2);
    return CounterRng(seed).at(counter);
  }

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<std::int32_t>& marking_init,
                  DeviceBuffer<std::int32_t>& tbl_in_g,
                  DeviceBuffer<std::int32_t>& tbl_out_g,
                  const Texture1D<std::int32_t>& tbl_in_t,
                  const Texture1D<std::int32_t>& tbl_out_t,
                  DeviceBuffer<std::int32_t>& marking_out,
                  DeviceBuffer<std::int32_t>& fired_out) const {
    auto MInit = ctx.global(marking_init);
    auto InG = ctx.global(tbl_in_g);
    auto OutG = ctx.global(tbl_out_g);
    auto InT = ctx.texture(tbl_in_t);
    auto OutT = ctx.texture(tbl_out_t);
    auto MOut = ctx.global(marking_out);
    auto Fired = ctx.global(fired_out);

    ctx.ialu(2);
    const int sim = ctx.global_thread_x();
    if (!ctx.branch(sim < num_sims)) return;

    // Per-simulation marking state lives in GLOBAL memory (this is what
    // bounds PNS's thread count in Table 3), strided by simulation count so
    // that identical place indices across lanes coalesce.  The kernel
    // (re)initializes its own slice first, which also keeps it idempotent at
    // block granularity for the two-pass launch.
    auto slot = [&](int p2) {
      return static_cast<std::size_t>(p2) * num_sims +
             static_cast<std::size_t>(sim);
    };
    for (int p2 = 0; p2 < kPnsPlaces; ++p2) {
      ctx.ialu(3);
      MOut.st(slot(p2), MInit.ld(static_cast<std::size_t>(p2)));
      ctx.loop_branch();
    }

    const std::uint64_t base =
        static_cast<std::uint64_t>(sim) * static_cast<std::uint64_t>(steps);
    std::int32_t fired = 0;
    for (int s = 0; s < steps; ++s) {
      ctx.ialu(3);
      const int t = static_cast<int>(draw(ctx, rng_seed, base + s) %
                                     kPnsTransitions);
      auto table = [&](bool input, int k) -> std::int32_t {
        const std::size_t idx = static_cast<std::size_t>(t) * kPnsArity + k;
        if (table_space == PnsTableSpace::kTexture) {
          return input ? InT.fetch(idx) : OutT.fetch(idx);
        }
        return input ? InG.ld(idx) : OutG.ld(idx);
      };
      // Enabled iff every input place holds a token.
      bool enabled = true;
      for (int k = 0; k < kPnsArity; ++k) {
        ctx.ialu(2);
        enabled = enabled && MOut.ld(slot(table(true, k))) > 0;
      }
      if (ctx.branch(enabled)) {
        for (int k = 0; k < kPnsArity; ++k) {
          ctx.ialu(3);
          const int pin = table(true, k);
          const int pout = table(false, k);
          MOut.st(slot(pin), MOut.ld(slot(pin)) - 1);
          MOut.st(slot(pout), MOut.ld(slot(pout)) + 1);
        }
        ++fired;
        ctx.ialu(1);
      }
      ctx.loop_branch();
    }
    Fired.st(static_cast<std::size_t>(sim), fired);
  }
};

class PnsApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
