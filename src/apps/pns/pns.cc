#include "apps/pns/pns.h"

#include "common/measure.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

PnsNet PnsNet::generate(std::uint64_t seed) {
  SplitMix64 rng(seed);
  PnsNet net;
  net.rng_seed = rng.next_u64();
  net.in.resize(kPnsTransitions * kPnsArity);
  net.out.resize(kPnsTransitions * kPnsArity);
  for (int t = 0; t < kPnsTransitions; ++t) {
    for (int k = 0; k < kPnsArity; ++k) {
      // Input places of one transition must be distinct: the kernel's
      // enabledness test checks each place for one token, so a duplicated
      // input would let a single token be consumed twice.
      std::int32_t in;
      do {
        in = static_cast<std::int32_t>(rng.next_below(kPnsPlaces));
      } while (k > 0 &&
               in == net.in[static_cast<std::size_t>(t) * kPnsArity + k - 1]);
      net.in[static_cast<std::size_t>(t) * kPnsArity + k] = in;
      net.out[static_cast<std::size_t>(t) * kPnsArity + k] =
          static_cast<std::int32_t>(rng.next_below(kPnsPlaces));
    }
  }
  net.initial_marking.resize(kPnsPlaces);
  for (auto& m : net.initial_marking)
    m = static_cast<std::int32_t>(rng.next_below(4));
  return net;
}

std::int32_t pns_simulate_cpu(const PnsNet& net, int sim, int steps,
                              std::int32_t* marking_out) {
  std::int32_t marking[kPnsPlaces];
  for (int p = 0; p < kPnsPlaces; ++p) marking[p] = net.initial_marking[p];
  const CounterRng rng(net.rng_seed);
  const std::uint64_t base =
      static_cast<std::uint64_t>(sim) * static_cast<std::uint64_t>(steps);
  std::int32_t fired = 0;
  for (int s = 0; s < steps; ++s) {
    const int t = static_cast<int>(rng.at(base + s) % kPnsTransitions);
    bool enabled = true;
    for (int k = 0; k < kPnsArity; ++k)
      enabled = enabled &&
                marking[net.in[static_cast<std::size_t>(t) * kPnsArity + k]] > 0;
    if (enabled) {
      for (int k = 0; k < kPnsArity; ++k) {
        --marking[net.in[static_cast<std::size_t>(t) * kPnsArity + k]];
        ++marking[net.out[static_cast<std::size_t>(t) * kPnsArity + k]];
      }
      ++fired;
    }
  }
  if (marking_out)
    for (int p = 0; p < kPnsPlaces; ++p) marking_out[p] = marking[p];
  return fired;
}

AppInfo PnsApp::info() const {
  return AppInfo{
      .name = "PNS",
      .description = "replicated stochastic Petri-net simulations, one per "
                     "thread",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "global memory capacity (per-simulation state); "
                          "texture cache for net structure (§5.2, 2.8x)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult PnsApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int num_sims = scale == RunScale::kQuick ? 2048 : 16384;
  const int steps = scale == RunScale::kQuick ? 64 : 256;
  const auto net = PnsNet::generate(/*seed=*/71);

  AppResult r;
  r.info = info();

  // --- CPU baseline: all replicas sequentially ---
  std::vector<std::int32_t> fired_ref(num_sims);
  std::vector<std::int32_t> marking_ref(
      static_cast<std::size_t>(kPnsPlaces) * num_sims);
  std::vector<std::int32_t> tmp(kPnsPlaces);
  const double host_secs = measure_seconds([&] {
    for (int s = 0; s < num_sims; ++s) {
      fired_ref[static_cast<std::size_t>(s)] =
          pns_simulate_cpu(net, s, steps, tmp.data());
      for (int p = 0; p < kPnsPlaces; ++p)
        marking_ref[static_cast<std::size_t>(p) * num_sims + s] = tmp[p];
    }
  });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  // --- GPU port ---
  dev.ledger().reset();
  auto d_init = dev.alloc<std::int32_t>(net.initial_marking.size());
  d_init.copy_from_host(net.initial_marking);
  auto d_in_g = dev.alloc<std::int32_t>(net.in.size());
  auto d_out_g = dev.alloc<std::int32_t>(net.out.size());
  d_in_g.copy_from_host(net.in);
  d_out_g.copy_from_host(net.out);
  auto d_in_t = dev.alloc_texture<std::int32_t>(net.in.size());
  auto d_out_t = dev.alloc_texture<std::int32_t>(net.out.size());
  d_in_t.copy_from_host(net.in);
  d_out_t.copy_from_host(net.out);
  auto d_marking = dev.alloc<std::int32_t>(
      static_cast<std::size_t>(kPnsPlaces) * num_sims);
  auto d_fired = dev.alloc<std::int32_t>(num_sims);

  PnsKernel kernel;
  kernel.num_sims = num_sims;
  kernel.steps = steps;
  kernel.rng_seed = net.rng_seed;
  kernel.table_space = PnsTableSpace::kTexture;

  LaunchOptions opt;
  opt.regs_per_thread = 24;
  opt.uses_sync = false;
  const Dim3 block(128);
  const Dim3 grid(static_cast<unsigned>((num_sims + 127) / 128));
  const auto stats = launch(dev, grid, block, opt, kernel, d_init, d_in_g,
                            d_out_g, d_in_t, d_out_t, d_marking, d_fired);
  const auto marking_gpu = d_marking.copy_to_host();
  const auto fired_gpu = d_fired.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate: integer trajectories must match exactly ---
  double err = 0;
  for (int s = 0; s < num_sims; ++s)
    if (fired_gpu[static_cast<std::size_t>(s)] !=
        fired_ref[static_cast<std::size_t>(s)])
      err = 1.0;
  for (std::size_t i = 0; i < marking_ref.size(); ++i)
    if (marking_gpu[i] != marking_ref[i]) err = 1.0;
  finish_validation(r, err, 0.0);
  return r;
}

}  // namespace g80::apps
