// H.264 — full-search motion estimation (the extracted kernel) plus the
// serial encoder remainder.
//
// The paper's H.264 port required "a large-scale code transformation to
// extract the motion estimation kernel from non-parallel application code",
// and is the suite's cautionary transfer-cost tale: it "spends more time in
// data transfer than GPU execution" (Table 3), because every frame must
// cross the PCIe link.  We reproduce that structure:
//   - GPU kernel: one thread block per 16x16 macroblock, one thread per
//     candidate motion vector in a +/-8 full-search window; current block
//     and reference window staged through shared memory; block-wide
//     min-reduction picks the best SAD;
//   - serial host code: motion compensation, residual, 4x4 Hadamard-style
//     transform and quantization (the unported encoder path).
#pragma once

#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

inline constexpr int kMb = 16;        // macroblock size
inline constexpr int kSearch = 8;     // +/- search range
inline constexpr int kWindow = 2 * kSearch + kMb - 1;  // 31: staged ref extent
inline constexpr int kCandidates = (2 * kSearch) * (2 * kSearch);  // 256

struct H264Workload {
  int width = 0, height = 0;  // multiples of kMb
  std::vector<std::int32_t> cur, ref;  // luma planes, row-major
  std::vector<int> true_mvx, true_mvy;  // planted motion per macroblock

  int mbs_x() const { return width / kMb; }
  int mbs_y() const { return height / kMb; }
  int num_mbs() const { return mbs_x() * mbs_y(); }
  static int mbs_x_of(int width) { return width / kMb; }
  static int mbs_y_of(int height) { return height / kMb; }

  static H264Workload generate(int width, int height, std::uint64_t seed);
};

struct H264Motion {
  std::int32_t best_sad = 0;
  std::int32_t best_cand = 0;  // candidate index; mv = decode_mv(best_cand)

  static std::pair<int, int> decode_mv(int cand) {
    return {cand % (2 * kSearch) - kSearch, cand / (2 * kSearch) - kSearch};
  }
};

// CPU reference full search (identical candidate ordering and tie-breaking:
// lowest SAD, then lowest candidate index).
void h264_me_cpu(const H264Workload& w, std::vector<H264Motion>& motion);

// Serial encoder remainder: residual + 4x4 transform + quantization; returns
// a checksum so the work is observable.  Shared by CPU and GPU paths.
std::uint64_t h264_encode_residual_cpu(const H264Workload& w,
                                       const std::vector<H264Motion>& motion);

struct H264MeKernel {
  int width = 0, height = 0;
  // §5.2's shared-memory buffering knob (bench/ablation_staging): when
  // false, every SAD term reads the frames straight from global memory —
  // 512 scattered global loads per candidate instead of two staged tiles.
  bool stage_in_shared = true;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<std::int32_t>& cur,
                  DeviceBuffer<std::int32_t>& ref,
                  DeviceBuffer<std::int32_t>& out_sad,
                  DeviceBuffer<std::int32_t>& out_cand) const {
    auto Cur = ctx.global(cur);
    auto Ref = ctx.global(ref);
    auto OutSad = ctx.global(out_sad);
    auto OutCand = ctx.global(out_cand);

    auto cur_sh = ctx.template shared<std::int32_t>(kMb * kMb);
    auto ref_sh = ctx.template shared<std::int32_t>(kWindow * kWindow);
    auto red_sad = ctx.template shared<std::int32_t>(kCandidates);
    auto red_idx = ctx.template shared<std::int32_t>(kCandidates);

    ctx.ialu(6);
    const int tid = static_cast<int>(ctx.thread_idx().x);
    const int mbx = static_cast<int>(ctx.block_idx().x);
    const int mby = static_cast<int>(ctx.block_idx().y);
    const int mb_px = mbx * kMb;  // macroblock origin in the frame
    const int mb_py = mby * kMb;

    // --- Stage the current macroblock and reference window (skippable for
    // the §5.2 buffering ablation) ---
    if (stage_in_shared) {
      {
        ctx.ialu(4);
        const int lx = tid % kMb, ly = tid / kMb;
        cur_sh.st(static_cast<std::size_t>(tid),
                  Cur.ld(static_cast<std::size_t>(mb_py + ly) * width + mb_px + lx));
      }
      // Reference window is 31x31, clamped at frame edges.
      for (int base = tid; base < kWindow * kWindow; base += kCandidates) {
        ctx.ialu(6);
        const int wx = base % kWindow, wy = base / kWindow;
        const int fx = clampi(mb_px - kSearch + wx, 0, width - 1);
        const int fy = clampi(mb_py - kSearch + wy, 0, height - 1);
        ref_sh.st(static_cast<std::size_t>(base),
                  Ref.ld(static_cast<std::size_t>(fy) * width + fx));
        ctx.loop_branch();
      }
    }
    ctx.sync();

    // --- Each thread: SAD of its candidate displacement ---
    ctx.ialu(3);
    const int dx = tid % (2 * kSearch);  // window offset 0..15 => mv -8..7
    const int dy = tid / (2 * kSearch);
    std::int32_t sad = 0;
    for (int y = 0; y < kMb; ++y) {
      for (int x = 0; x < kMb; ++x) {
        ctx.ialu(4);  // addressing + abs-diff accumulate
        std::int32_t a, b;
        if (stage_in_shared) {
          a = cur_sh.ld(static_cast<std::size_t>(y) * kMb + x);
          b = ref_sh.ld(static_cast<std::size_t>(dy + y) * kWindow + dx + x);
        } else {
          ctx.ialu(4);
          a = Cur.ld(static_cast<std::size_t>(mb_py + y) * width + mb_px + x);
          const int fx = clampi(mb_px - kSearch + dx + x, 0, width - 1);
          const int fy = clampi(mb_py - kSearch + dy + y, 0, height - 1);
          b = Ref.ld(static_cast<std::size_t>(fy) * width + fx);
        }
        sad += a > b ? a - b : b - a;
        ctx.loop_branch();
      }
    }
    red_sad.st(static_cast<std::size_t>(tid), sad);
    red_idx.st(static_cast<std::size_t>(tid), tid);
    ctx.sync();

    // --- Block-wide min reduction (lexicographic on (sad, index)) ---
    for (int stride = kCandidates / 2; stride > 0; stride /= 2) {
      ctx.ialu(2);
      if (ctx.branch(tid < stride)) {
        const std::int32_t s0 = red_sad.ld(static_cast<std::size_t>(tid));
        const std::int32_t s1 =
            red_sad.ld(static_cast<std::size_t>(tid) + stride);
        const std::int32_t i0 = red_idx.ld(static_cast<std::size_t>(tid));
        const std::int32_t i1 =
            red_idx.ld(static_cast<std::size_t>(tid) + stride);
        ctx.ialu(3);
        if (s1 < s0 || (s1 == s0 && i1 < i0)) {
          red_sad.st(static_cast<std::size_t>(tid), s1);
          red_idx.st(static_cast<std::size_t>(tid), i1);
        }
      }
      ctx.sync();
      ctx.loop_branch();
    }
    if (ctx.branch(tid == 0)) {
      ctx.ialu(2);
      const std::size_t mb = static_cast<std::size_t>(mby) *
                                 static_cast<std::size_t>(width / kMb) +
                             mbx;
      OutSad.st(mb, red_sad.ld(0));
      OutCand.st(mb, red_idx.ld(0));
    }
  }

  static int clampi(int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  }
};

class H264App : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
