#include "apps/h264/h264.h"

#include <cmath>

#include "common/measure.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

H264Workload H264Workload::generate(int width, int height, std::uint64_t seed) {
  SplitMix64 rng(seed);
  H264Workload w;
  w.width = width;
  w.height = height;
  w.ref.resize(static_cast<std::size_t>(width) * height);
  w.cur.resize(w.ref.size());

  // Reference frame: smooth gradients plus texture noise (so SADs are
  // informative rather than flat).
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double v = 96.0 + 50.0 * std::sin(x * 0.11) * std::cos(y * 0.07) +
                       30.0 * rng.next_double();
      w.ref[static_cast<std::size_t>(y) * width + x] =
          static_cast<std::int32_t>(v);
    }
  }
  // Current frame: each macroblock is the reference shifted by a planted
  // motion vector, plus mild noise.
  w.true_mvx.resize(w.num_mbs());
  w.true_mvy.resize(w.num_mbs());
  for (int mby = 0; mby < H264Workload::mbs_y_of(height); ++mby) {
    for (int mbx = 0; mbx < H264Workload::mbs_x_of(width); ++mbx) {
      const int mvx = static_cast<int>(rng.next_below(2 * kSearch)) - kSearch;
      const int mvy = static_cast<int>(rng.next_below(2 * kSearch)) - kSearch;
      w.true_mvx[static_cast<std::size_t>(mby) * H264Workload::mbs_x_of(width) + mbx] = mvx;
      w.true_mvy[static_cast<std::size_t>(mby) * H264Workload::mbs_x_of(width) + mbx] = mvy;
      for (int y = 0; y < kMb; ++y) {
        for (int x = 0; x < kMb; ++x) {
          const int fx = H264MeKernel::clampi(mbx * kMb + x + mvx, 0, width - 1);
          const int fy = H264MeKernel::clampi(mby * kMb + y + mvy, 0, height - 1);
          const auto noise = static_cast<std::int32_t>(rng.next_below(3));
          w.cur[static_cast<std::size_t>(mby * kMb + y) * width + mbx * kMb + x] =
              w.ref[static_cast<std::size_t>(fy) * width + fx] + noise;
        }
      }
    }
  }
  return w;
}

void h264_me_cpu(const H264Workload& w, std::vector<H264Motion>& motion) {
  motion.assign(w.num_mbs(), {});
  for (int mby = 0; mby < w.mbs_y(); ++mby) {
    for (int mbx = 0; mbx < w.mbs_x(); ++mbx) {
      std::int32_t best_sad = INT32_MAX;
      std::int32_t best_cand = 0;
      for (int cand = 0; cand < kCandidates; ++cand) {
        const auto [mvx, mvy] = H264Motion::decode_mv(cand);
        std::int32_t sad = 0;
        for (int y = 0; y < kMb; ++y) {
          for (int x = 0; x < kMb; ++x) {
            const std::int32_t a =
                w.cur[static_cast<std::size_t>(mby * kMb + y) * w.width +
                      mbx * kMb + x];
            const int fx =
                H264MeKernel::clampi(mbx * kMb + x + mvx, 0, w.width - 1);
            const int fy =
                H264MeKernel::clampi(mby * kMb + y + mvy, 0, w.height - 1);
            const std::int32_t b =
                w.ref[static_cast<std::size_t>(fy) * w.width + fx];
            sad += a > b ? a - b : b - a;
          }
        }
        if (sad < best_sad) {
          best_sad = sad;
          best_cand = cand;
        }
      }
      motion[static_cast<std::size_t>(mby) * w.mbs_x() + mbx] = {best_sad,
                                                                 best_cand};
    }
  }
}

std::uint64_t h264_encode_residual_cpu(const H264Workload& w,
                                       const std::vector<H264Motion>& motion) {
  // Serial remainder: motion compensation, residual, 4x4 Hadamard-ish
  // transform, dead-zone quantization, checksum.
  std::uint64_t checksum = 0;
  std::int32_t res[kMb][kMb];
  for (int mb = 0; mb < w.num_mbs(); ++mb) {
    const int mbx = mb % w.mbs_x(), mby = mb / w.mbs_x();
    const auto [mvx, mvy] = H264Motion::decode_mv(motion[mb].best_cand);
    for (int y = 0; y < kMb; ++y) {
      for (int x = 0; x < kMb; ++x) {
        const int fx = H264MeKernel::clampi(mbx * kMb + x + mvx, 0, w.width - 1);
        const int fy = H264MeKernel::clampi(mby * kMb + y + mvy, 0, w.height - 1);
        res[y][x] =
            w.cur[static_cast<std::size_t>(mby * kMb + y) * w.width +
                  mbx * kMb + x] -
            w.ref[static_cast<std::size_t>(fy) * w.width + fx];
      }
    }
    // 4x4 horizontal+vertical butterfly per sub-block, then quantize.
    for (int by = 0; by < kMb; by += 4) {
      for (int bx = 0; bx < kMb; bx += 4) {
        for (int y = 0; y < 4; ++y) {
          const std::int32_t a = res[by + y][bx], b = res[by + y][bx + 1],
                             c = res[by + y][bx + 2], d = res[by + y][bx + 3];
          res[by + y][bx] = a + b + c + d;
          res[by + y][bx + 1] = a - b + c - d;
          res[by + y][bx + 2] = a + b - c - d;
          res[by + y][bx + 3] = a - b - c + d;
        }
        for (int x = 0; x < 4; ++x) {
          const std::int32_t a = res[by][bx + x], b = res[by + 1][bx + x],
                             c = res[by + 2][bx + x], d = res[by + 3][bx + x];
          res[by][bx + x] = (a + b + c + d) / 8;
          res[by + 1][bx + x] = (a - b + c - d) / 8;
          res[by + 2][bx + x] = (a + b - c - d) / 8;
          res[by + 3][bx + x] = (a - b - c + d) / 8;
        }
      }
    }
    for (int y = 0; y < kMb; ++y)
      for (int x = 0; x < kMb; ++x)
        checksum = checksum * 1099511628211ull ^
                   static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(res[y][x]));
  }
  return checksum;
}

AppInfo H264App::info() const {
  return AppInfo{
      .name = "H.264",
      .description = "full-search motion estimation kernel + serial encoder "
                     "remainder",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "CPU-GPU transfer: \"spends more time in data "
                          "transfer than GPU execution\" (Table 3)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult H264App::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int width = scale == RunScale::kQuick ? 64 : 192;
  const int height = scale == RunScale::kQuick ? 48 : 128;
  const auto w = H264Workload::generate(width, height, /*seed=*/91);

  AppResult r;
  r.info = info();

  // --- CPU baseline: full search (kernel) + residual path (serial) ---
  std::vector<H264Motion> motion_ref;
  const double host_me = measure_seconds([&] { h264_me_cpu(w, motion_ref); });
  std::uint64_t checksum_ref = 0;
  const double host_res = measure_seconds(
      [&] { checksum_ref = h264_encode_residual_cpu(w, motion_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_me);
  r.cpu_other_seconds = to_opteron_seconds(host_res);

  // --- GPU port: upload both frames, run ME kernel, read back motion ---
  dev.ledger().reset();
  auto d_cur = dev.alloc<std::int32_t>(w.cur.size());
  auto d_ref = dev.alloc<std::int32_t>(w.ref.size());
  d_cur.copy_from_host(w.cur);
  d_ref.copy_from_host(w.ref);
  auto d_sad = dev.alloc<std::int32_t>(w.num_mbs());
  auto d_cand = dev.alloc<std::int32_t>(w.num_mbs());

  LaunchOptions opt;
  opt.regs_per_thread = 15;
  const Dim3 block(kCandidates);
  const Dim3 grid(static_cast<unsigned>(w.mbs_x()),
                  static_cast<unsigned>(w.mbs_y()));
  const auto stats = launch(dev, grid, block, opt, H264MeKernel{width, height},
                            d_cur, d_ref, d_sad, d_cand);
  const auto sad_gpu = d_sad.copy_to_host();
  const auto cand_gpu = d_cand.copy_to_host();

  accumulate_launch(r, dev.spec(), stats);
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // Serial remainder runs on the host in the GPU path too.
  std::vector<H264Motion> motion_gpu(w.num_mbs());
  for (int i = 0; i < w.num_mbs(); ++i)
    motion_gpu[static_cast<std::size_t>(i)] = {
        sad_gpu[static_cast<std::size_t>(i)],
        cand_gpu[static_cast<std::size_t>(i)]};
  const std::uint64_t checksum_gpu =
      h264_encode_residual_cpu(w, motion_gpu);

  // --- Validate: identical motion field and residual checksum ---
  double err = 0;
  for (int i = 0; i < w.num_mbs(); ++i) {
    if (motion_gpu[static_cast<std::size_t>(i)].best_sad !=
            motion_ref[static_cast<std::size_t>(i)].best_sad ||
        motion_gpu[static_cast<std::size_t>(i)].best_cand !=
            motion_ref[static_cast<std::size_t>(i)].best_cand)
      err = 1.0;
  }
  if (checksum_gpu != checksum_ref) err = 1.0;
  finish_validation(r, err, 0.0);
  return r;
}

}  // namespace g80::apps
