// The application suite of the paper's §5 study (Tables 2 and 3).
#pragma once

#include <memory>
#include <vector>

#include "core/app.h"

namespace g80::apps {

// All ported applications, in the paper's Table 2 order where applicable.
std::vector<std::unique_ptr<App>> make_suite();

}  // namespace g80::apps
