#include "apps/lbm/lbm.h"

#include <cmath>

#include "common/error.h"
#include "common/measure.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

// D3Q19: rest, 6 faces, 12 edges.
const int kLbmEx[kLbmQ] = {0, 1, -1, 0, 0,  0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0,  0,  0,  0};
const int kLbmEy[kLbmQ] = {0, 0, 0,  1, -1, 0, 0, 1, -1, -1, 1, 0, 0,  0, 0,  1, -1, 1,  -1};
const int kLbmEz[kLbmQ] = {0, 0, 0,  0, 0,  1, -1, 0, 0,  0, 0,  1, -1, -1, 1, 1, -1, -1, 1};
namespace {
constexpr int make_xslot(int q) {
  int slot = 0;
  for (int i = 0; i < q; ++i) slot += kLbmEx[i] != 0 ? 1 : 0;
  return slot;
}
}  // namespace

const int kLbmXSlot[kLbmQ] = {
    -1, make_xslot(1),  make_xslot(2),  -1, -1, -1, -1,
    make_xslot(7),  make_xslot(8),  make_xslot(9),  make_xslot(10),
    make_xslot(11), make_xslot(12), make_xslot(13), make_xslot(14),
    -1, -1, -1, -1};

const float kLbmW[kLbmQ] = {
    1.0f / 3,  1.0f / 18, 1.0f / 18, 1.0f / 18, 1.0f / 18, 1.0f / 18,
    1.0f / 18, 1.0f / 36, 1.0f / 36, 1.0f / 36, 1.0f / 36, 1.0f / 36,
    1.0f / 36, 1.0f / 36, 1.0f / 36, 1.0f / 36, 1.0f / 36, 1.0f / 36,
    1.0f / 36};

namespace {

// Equilibrium distribution; shared by init, CPU reference, and (through the
// annotated kernel expressions, in identical order) the GPU port.
float feq(int q, float rho, float ux, float uy, float uz, float usq) {
  const float eu = static_cast<float>(kLbmEx[q]) * ux +
                   (static_cast<float>(kLbmEy[q]) * uy +
                    static_cast<float>(kLbmEz[q]) * uz);
  const float poly = 4.5f * (eu * eu) + (3.0f * eu + (-1.5f * usq + 1.0f));
  return (kLbmW[q] * rho) * poly;
}

}  // namespace

LbmWorkload LbmWorkload::generate(const LbmParams& p) {
  LbmWorkload w;
  w.p = p;
  const std::size_t cells = p.cells();
  w.f0.resize(static_cast<std::size_t>(kLbmQ) * cells);
  const float u0 = 0.05f;
  for (int z = 0; z < p.nz; ++z) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        const std::size_t c =
            (static_cast<std::size_t>(z) * p.ny + y) * p.nx + x;
        const float uy = u0 * std::sin(2.0f * static_cast<float>(M_PI) *
                                       static_cast<float>(x) /
                                       static_cast<float>(p.nx));
        const float usq = uy * uy;
        for (int q = 0; q < kLbmQ; ++q)
          w.f0[static_cast<std::size_t>(q) * cells + c] =
              feq(q, 1.0f, 0.0f, uy, 0.0f, usq);
      }
    }
  }
  return w;
}

void lbm_cpu(const LbmParams& p, std::vector<float>& f,
             std::vector<float>& f_tmp) {
  const std::size_t cells = p.cells();
  f_tmp.resize(f.size());
  const float omega = 1.0f / p.tau;
  auto wrap = [](int v, int n) { return v < 0 ? v + n : (v >= n ? v - n : v); };

  for (int step = 0; step < p.steps; ++step) {
    for (int z = 0; z < p.nz; ++z) {
      for (int y = 0; y < p.ny; ++y) {
        for (int x = 0; x < p.nx; ++x) {
          const std::size_t c =
              (static_cast<std::size_t>(z) * p.ny + y) * p.nx + x;
          float fq[kLbmQ];
          float rho = 0, ux = 0, uy = 0, uz = 0;
          for (int q = 0; q < kLbmQ; ++q) {
            const int sx = wrap(x - kLbmEx[q], p.nx);
            const int sy = wrap(y - kLbmEy[q], p.ny);
            const int sz = wrap(z - kLbmEz[q], p.nz);
            const std::size_t sc =
                (static_cast<std::size_t>(sz) * p.ny + sy) * p.nx + sx;
            fq[q] = f[static_cast<std::size_t>(q) * cells + sc];
            rho = rho + fq[q];
            ux = static_cast<float>(kLbmEx[q]) * fq[q] + ux;
            uy = static_cast<float>(kLbmEy[q]) * fq[q] + uy;
            uz = static_cast<float>(kLbmEz[q]) * fq[q] + uz;
          }
          const float inv_rho = 1.0f / rho;
          ux *= inv_rho;
          uy *= inv_rho;
          uz *= inv_rho;
          const float usq = ux * ux + (uy * uy + uz * uz);
          for (int q = 0; q < kLbmQ; ++q) {
            const float fe = feq(q, rho, ux, uy, uz, usq);
            f_tmp[static_cast<std::size_t>(q) * cells + c] =
                omega * (fe - fq[q]) + fq[q];
          }
        }
      }
    }
    f.swap(f_tmp);
  }
}

LaunchStats lbm_gpu(Device& dev, const LbmParams& p, LbmLayout layout,
                    const std::vector<float>& f0, std::vector<float>& f_out,
                    int* launches_out) {
  const std::size_t cells = p.cells();
  const int nt = 128;
  G80_CHECK_MSG(p.nx % nt == 0 || p.nx == nt,
                "lattice x extent must be a multiple of the block size");

  // Convert SoA initial state to the requested layout for upload.
  std::vector<float> staged(f0.size());
  if (layout == LbmLayout::kAoS) {
    for (int q = 0; q < kLbmQ; ++q)
      for (std::size_t c = 0; c < cells; ++c)
        staged[c * kLbmQ + q] = f0[static_cast<std::size_t>(q) * cells + c];
  } else {
    staged = f0;
  }

  auto d_a = dev.alloc<float>(staged.size());
  auto d_b = dev.alloc<float>(staged.size());
  d_a.copy_from_host(staged);

  LaunchOptions opt;
  opt.regs_per_thread = 32;  // per-cell moments + loop state
  opt.uses_sync = layout == LbmLayout::kSoAStaged;
  const Dim3 block(static_cast<unsigned>(nt));
  const Dim3 grid(static_cast<unsigned>(p.nx / nt),
                  static_cast<unsigned>(p.ny * p.nz));

  LaunchStats last;
  DeviceBuffer<float>* src = &d_a;
  DeviceBuffer<float>* dst = &d_b;
  for (int s = 0; s < p.steps; ++s) {
    last = launch(dev, grid, block, opt, LbmKernel{p, layout}, *src, *dst);
    std::swap(src, dst);
  }
  if (launches_out) *launches_out = p.steps;

  // Read back and convert to SoA.
  const auto result = src->copy_to_host();
  f_out.resize(result.size());
  if (layout == LbmLayout::kAoS) {
    for (int q = 0; q < kLbmQ; ++q)
      for (std::size_t c = 0; c < cells; ++c)
        f_out[static_cast<std::size_t>(q) * cells + c] = result[c * kLbmQ + q];
  } else {
    f_out = result;
  }
  return last;
}

AppInfo LbmApp::info() const {
  return AppInfo{
      .name = "LBM",
      .description = "D3Q19 lattice-Boltzmann fluid, kernel relaunched per "
                     "time step",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "shared memory capacity; per-step global sync via "
                          "kernel termination (§5.1)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult LbmApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  LbmParams p;
  if (scale == RunScale::kQuick) {
    p.nx = 128;
    p.ny = 4;
    p.nz = 2;
    p.steps = 2;
  } else {
    p.nx = 128;
    p.ny = 8;
    p.nz = 8;
    p.steps = 4;
  }
  const auto w = LbmWorkload::generate(p);

  AppResult r;
  r.info = info();

  // --- CPU baseline ---
  std::vector<float> f_ref, f_tmp;
  const double host_secs = measure_seconds([&] {
    f_ref = w.f0;
    lbm_cpu(p, f_ref, f_tmp);
  });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  // --- GPU port (the paper's shared-memory-staged, coalesced layout) ---
  dev.ledger().reset();
  std::vector<float> f_gpu;
  int launches = 0;
  const auto stats =
      lbm_gpu(dev, p, LbmLayout::kSoAStaged, w.f0, f_gpu, &launches);
  for (int i = 0; i < launches; ++i) accumulate_launch(r, dev.spec(), stats);
  r.launches = launches;
  r.representative = stats;
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  // --- Validate ---
  double err = 0;
  for (std::size_t i = 0; i < f_ref.size(); ++i)
    err = std::max(err, rel_err(f_gpu[i], f_ref[i], 1e-3));
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
