// LBM — D3Q19 lattice-Boltzmann fluid solver (BGK collision, periodic box).
//
// The paper's LBM port is its flagship "time-sliced simulator": one kernel
// launch per time step (global synchronization via kernel termination,
// §5.1), a high memory-to-compute ratio, and per-cell state staged through
// shared memory, which caps occupancy at one block per SM (Table 3's
// "shared memory capacity" bottleneck).
//
// Figure 5 contrasts this kernel's global-load patterns; we implement all
// three layouts it discusses:
//   kAoS        f[cell][q]  — half-warp strides 19 words, fully scattered
//   kSoA        f[q][cell]  — unit stride, but x-neighbor pulls are
//                             misaligned by one word, breaking the strict
//                             G80 coalescing rule for 10 of 19 loads
//   kSoAStaged  f[q][cell] with x-shifted rows staged through shared
//                             memory so every global load is aligned
#pragma once

#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

inline constexpr int kLbmQ = 19;

// D3Q19 velocity set: index 0 is rest; 1..6 face neighbors; 7..18 edges.
extern const int kLbmEx[kLbmQ];
extern const int kLbmEy[kLbmQ];
extern const int kLbmEz[kLbmQ];
extern const float kLbmW[kLbmQ];
// Staging slot for x-moving distributions (-1 when e_x == 0); kLbmXRows of
// them.  The staged kernel loads all of these rows aligned into shared
// memory behind a single barrier.
extern const int kLbmXSlot[kLbmQ];
inline constexpr int kLbmXRows = 10;

enum class LbmLayout { kAoS, kSoA, kSoAStaged };

struct LbmParams {
  int nx = 128, ny = 8, nz = 8;
  float tau = 0.6f;  // BGK relaxation time
  int steps = 4;

  std::size_t cells() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }
};

struct LbmWorkload {
  LbmParams p;
  std::vector<float> f0;  // initial distributions, stored SoA: f0[q*cells+c]

  // Initializes a shear-wave velocity profile u_y(x) = u0 sin(2 pi x / nx).
  static LbmWorkload generate(const LbmParams& p);
};

// CPU reference: `steps` pull-stream + collide sweeps over an SoA array.
void lbm_cpu(const LbmParams& p, std::vector<float>& f,
             std::vector<float>& f_tmp);

// One GPU time step: pull-stream from `src`, collide, write `dst`.
struct LbmKernel {
  LbmParams p;
  LbmLayout layout = LbmLayout::kSoAStaged;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& src,
                  DeviceBuffer<float>& dst) const {
    auto Src = ctx.global(src);
    auto Dst = ctx.global(dst);
    const std::size_t cells = p.cells();
    const int nt = static_cast<int>(ctx.block_dim().x);  // one x-line chunk

    // Per-thread distribution scratch in shared memory (the paper's LBM
    // design): layout f_sh[q*nt + tid] keeps each lane in its own bank.
    auto f_sh = ctx.template shared<float>(
        static_cast<std::size_t>(kLbmQ) * nt);
    // Staging buffer for the x-shifted rows, nt + 2 halo words each; all ten
    // are filled behind one barrier.
    const std::size_t row_pitch = static_cast<std::size_t>(nt) + 2;
    auto row_sh = ctx.template shared<float>(
        layout == LbmLayout::kSoAStaged ? kLbmXRows * row_pitch : 1);

    ctx.ialu(6);
    const int tid = static_cast<int>(ctx.thread_idx().x);
    const int x = static_cast<int>(ctx.block_idx().x) * nt + tid;
    const int y = static_cast<int>(ctx.block_idx().y) % p.ny;
    const int z = static_cast<int>(ctx.block_idx().y) / p.ny;
    const std::size_t c =
        (static_cast<std::size_t>(z) * p.ny + y) * p.nx + x;

    // --- Staged prologue: load every x-shifted source row aligned into
    // shared memory (lane i <- element i, plus two halo words), then one
    // barrier.  All subsequent global loads in this kernel are aligned
    // 16-word lines — the Figure 5 "after" pattern. ---
    if (layout == LbmLayout::kSoAStaged) {
      for (int q = 0; q < kLbmQ; ++q) {
        if (kLbmXSlot[q] < 0) continue;
        ctx.ialu(8);
        const int sy = wrap(y - kLbmEy[q], p.ny);
        const int sz = wrap(z - kLbmEz[q], p.nz);
        const std::size_t row =
            static_cast<std::size_t>(q) * cells +
            (static_cast<std::size_t>(sz) * p.ny + sy) * p.nx;
        const std::size_t base = static_cast<std::size_t>(kLbmXSlot[q]) * row_pitch;
        const int block_x0 = static_cast<int>(ctx.block_idx().x) * nt;
        row_sh.st(base + tid + 1, Src.ld(row + block_x0 + tid));
        if (ctx.branch(tid == 0)) {
          ctx.ialu(2);
          row_sh.st(base, Src.ld(row + wrap(block_x0 - 1, p.nx)));
          row_sh.st(base + nt + 1, Src.ld(row + wrap(block_x0 + nt, p.nx)));
        }
        ctx.loop_branch();
      }
      ctx.sync();
    }

    // --- Pull streaming: f_sh[q] = Src[q at cell - e_q] -----------------
    for (int q = 0; q < kLbmQ; ++q) {
      ctx.ialu(6);  // neighbor coordinate arithmetic + wraps
      const int sx = wrap(x - kLbmEx[q], p.nx);
      const int sy = wrap(y - kLbmEy[q], p.ny);
      const int sz = wrap(z - kLbmEz[q], p.nz);
      const std::size_t sc =
          (static_cast<std::size_t>(sz) * p.ny + sy) * p.nx + sx;

      float v;
      if (layout == LbmLayout::kAoS) {
        v = Src.ld(sc * kLbmQ + q);
      } else if (layout == LbmLayout::kSoA || kLbmEx[q] == 0) {
        // SoA direct; for staged, x-aligned q's are already coalesced.
        v = Src.ld(static_cast<std::size_t>(q) * cells + sc);
      } else {
        // Read the +/-1-shifted value from the staged row.
        ctx.ialu(2);
        v = row_sh.ld(static_cast<std::size_t>(kLbmXSlot[q]) * row_pitch +
                      tid + 1 - kLbmEx[q]);
      }
      f_sh.st(static_cast<std::size_t>(q) * nt + tid, v);
      ctx.loop_branch();
    }

    // --- Moments ---------------------------------------------------------
    float rho = 0, ux = 0, uy = 0, uz = 0;
    for (int q = 0; q < kLbmQ; ++q) {
      ctx.ialu(2);
      const float fq = f_sh.ld(static_cast<std::size_t>(q) * nt + tid);
      rho = ctx.add(rho, fq);
      ux = ctx.mad(static_cast<float>(kLbmEx[q]), fq, ux);
      uy = ctx.mad(static_cast<float>(kLbmEy[q]), fq, uy);
      uz = ctx.mad(static_cast<float>(kLbmEz[q]), fq, uz);
      ctx.loop_branch();
    }
    const float inv_rho = ctx.rcpf(rho);
    ux = ctx.mul(ux, inv_rho);
    uy = ctx.mul(uy, inv_rho);
    uz = ctx.mul(uz, inv_rho);
    const float usq =
        ctx.mad(ux, ux, ctx.mad(uy, uy, ctx.mul(uz, uz)));
    const float omega = 1.0f / p.tau;  // host constant folded at compile time

    // --- BGK collision + store -------------------------------------------
    for (int q = 0; q < kLbmQ; ++q) {
      ctx.ialu(2);
      const float eu = ctx.mad(static_cast<float>(kLbmEx[q]), ux,
                               ctx.mad(static_cast<float>(kLbmEy[q]), uy,
                                       ctx.mul(static_cast<float>(kLbmEz[q]), uz)));
      // feq = w rho (1 + 3 eu + 4.5 eu^2 - 1.5 u^2)
      const float poly = ctx.mad(
          4.5f, ctx.mul(eu, eu),
          ctx.mad(3.0f, eu, ctx.mad(-1.5f, usq, 1.0f)));
      const float feq = ctx.mul(ctx.mul(kLbmW[q], rho), poly);
      const float fq = f_sh.ld(static_cast<std::size_t>(q) * nt + tid);
      const float fnew = ctx.mad(omega, ctx.sub(feq, fq), fq);
      if (layout == LbmLayout::kAoS) {
        Dst.st(c * kLbmQ + q, fnew);
      } else {
        Dst.st(static_cast<std::size_t>(q) * cells + c, fnew);
      }
      ctx.loop_branch();
    }
  }

  static int wrap(int v, int n) { return v < 0 ? v + n : (v >= n ? v - n : v); }
};

// Runs `p.steps` launches with double buffering; returns final SoA state in
// `f_out` and per-launch stats via the last launch (they are homogeneous).
LaunchStats lbm_gpu(Device& dev, const LbmParams& p, LbmLayout layout,
                    const std::vector<float>& f0, std::vector<float>& f_out,
                    int* launches_out);

class LbmApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
