#include "apps/fem/fem.h"

#include <algorithm>
#include <cmath>

#include "common/measure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cpu_calibration.h"

namespace g80::apps {

FemMesh FemMesh::generate(int nodes, int avg_degree, std::uint64_t seed) {
  SplitMix64 rng(seed);
  FemMesh m;
  m.nodes = nodes;
  m.row_ptr.resize(nodes + 1, 0);

  // Synthetic unstructured mesh: each node connects to a few nearby nodes
  // (banded locality, like a reordered FEM matrix) plus one long-range
  // coupling, symmetrized implicitly by sampling both directions.
  std::vector<std::vector<std::pair<int, float>>> adj(nodes);
  for (int i = 0; i < nodes; ++i) {
    const int deg = 1 + static_cast<int>(rng.next_below(2 * avg_degree - 1));
    for (int d = 0; d < deg; ++d) {
      int j;
      if (d + 1 == deg) {
        j = static_cast<int>(rng.next_below(nodes));  // long-range
      } else {
        const int off = 1 + static_cast<int>(rng.next_below(32));
        j = (i + (rng.next_u64() & 1 ? off : nodes - off)) % nodes;
      }
      if (j == i) continue;
      adj[i].emplace_back(j, rng.uniform_f(0.01f, 1.0f));
    }
    std::sort(adj[i].begin(), adj[i].end());
    adj[i].erase(std::unique(adj[i].begin(), adj[i].end(),
                             [](auto& a, auto& b) { return a.first == b.first; }),
                 adj[i].end());
  }
  for (int i = 0; i < nodes; ++i) {
    m.row_ptr[i + 1] = m.row_ptr[i] + static_cast<int>(adj[i].size());
    for (auto& [j, v] : adj[i]) {
      m.col_idx.push_back(j);
      m.values.push_back(v);
    }
  }
  m.diag.resize(nodes);
  m.rhs.resize(nodes);
  for (int i = 0; i < nodes; ++i) {
    float row_sum = 0;
    for (int e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
      row_sum += std::abs(m.values[static_cast<std::size_t>(e)]);
    m.diag[i] = row_sum + 1.0f;  // strict diagonal dominance
    m.rhs[i] = rng.uniform_f(-1.0f, 1.0f);
  }
  return m;
}

int FemMesh::ell_width() const {
  int w = 0;
  for (int i = 0; i < nodes; ++i) w = std::max(w, row_ptr[i + 1] - row_ptr[i]);
  return w;
}

void FemMesh::to_ell(std::vector<int>& cols, std::vector<float>& vals) const {
  const int w = ell_width();
  cols.assign(static_cast<std::size_t>(w) * nodes, 0);
  vals.assign(static_cast<std::size_t>(w) * nodes, 0.0f);
  for (int i = 0; i < nodes; ++i) {
    int k = 0;
    for (int e = row_ptr[i]; e < row_ptr[i + 1]; ++e, ++k) {
      cols[static_cast<std::size_t>(k) * nodes + i] = col_idx[static_cast<std::size_t>(e)];
      vals[static_cast<std::size_t>(k) * nodes + i] = values[static_cast<std::size_t>(e)];
    }
    for (; k < w; ++k)
      cols[static_cast<std::size_t>(k) * nodes + i] = i;  // value 0: harmless
  }
}

void fem_cpu(const FemMesh& m, int iters, std::vector<float>& x) {
  x.assign(m.nodes, 0.0f);
  std::vector<float> xn(m.nodes);
  for (int it = 0; it < iters; ++it) {
    for (int i = 0; i < m.nodes; ++i) {
      float acc = m.rhs[i];
      for (int e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
        acc = (0.0f - m.values[static_cast<std::size_t>(e)]) *
                  x[static_cast<std::size_t>(m.col_idx[static_cast<std::size_t>(e)])] +
              acc;
      }
      // Mirrors the kernel's fdiv (rcp + mul).
      xn[i] = acc * (1.0f / m.diag[i]);
    }
    x.swap(xn);
  }
}

AppInfo FemApp::info() const {
  return AppInfo{
      .name = "FEM",
      .description = "Jacobi relaxation on an unstructured sparse mesh",
      .paper_kernel_pct = std::nullopt,
      .paper_bottleneck = "global memory bandwidth (irregular gathers, high "
                          "memory-to-compute ratio, §5.1)",
      .paper_kernel_speedup = std::nullopt,
      .paper_app_speedup = std::nullopt,
  };
}

AppResult FemApp::run(const DeviceSpec& spec, RunScale scale) const {
  Device dev(spec);
  const int nodes = scale == RunScale::kQuick ? 4096 : 32768;
  const int iters = scale == RunScale::kQuick ? 2 : 4;
  const auto m = FemMesh::generate(nodes, 8, /*seed=*/61);

  AppResult r;
  r.info = info();

  std::vector<float> x_ref;
  const double host_secs = measure_seconds([&] { fem_cpu(m, iters, x_ref); });
  r.cpu_kernel_seconds = to_opteron_seconds(host_secs);
  r.cpu_other_seconds = 0;

  dev.ledger().reset();
  std::vector<int> ell_cols;
  std::vector<float> ell_vals;
  m.to_ell(ell_cols, ell_vals);
  auto d_ci = dev.alloc<int>(ell_cols.size());
  auto d_va = dev.alloc<float>(ell_vals.size());
  auto d_dg = dev.alloc<float>(m.diag.size());
  auto d_b = dev.alloc<float>(m.rhs.size());
  auto d_xa = dev.alloc<float>(m.diag.size());
  auto d_xb = dev.alloc<float>(m.diag.size());
  d_ci.copy_from_host(ell_cols);
  d_va.copy_from_host(ell_vals);
  d_dg.copy_from_host(m.diag);
  d_b.copy_from_host(m.rhs);
  d_xa.fill(0.0f);

  LaunchOptions opt;
  opt.regs_per_thread = 12;
  opt.uses_sync = false;
  const Dim3 block(256);
  const Dim3 grid(static_cast<unsigned>((nodes + 255) / 256));

  auto *src = &d_xa, *dst = &d_xb;
  LaunchStats stats;
  for (int it = 0; it < iters; ++it) {
    stats = launch(dev, grid, block, opt, FemKernel{nodes, m.ell_width()},
                   d_ci, d_va, d_dg, d_b, *src, *dst);
    std::swap(src, dst);
    accumulate_launch(r, dev.spec(), stats, /*representative=*/true);
  }
  const auto x_gpu = src->copy_to_host();
  r.transfer_seconds = dev.ledger().seconds(dev.spec());

  double err = 0;
  for (int i = 0; i < nodes; ++i)
    err = std::max(err, rel_err(x_gpu[static_cast<std::size_t>(i)],
                                x_ref[static_cast<std::size_t>(i)], 1e-3));
  finish_validation(r, err, 1e-4);
  return r;
}

}  // namespace g80::apps
