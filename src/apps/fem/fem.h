// FEM — finite-element solver kernel: Jacobi relaxation of a sparse,
// diagonally-dominant system assembled on a synthetic unstructured mesh
// (CSR storage).
//
// The characteristic behaviour the paper reports for its FEM port: gathers
// through an irregular index list (the x[col] fetches stay uncoalesced no
// matter what), a high memory-to-compute ratio that saturates DRAM
// bandwidth, and a kernel relaunch per smoothing iteration because updates
// must propagate globally (§5.1's time-sliced-simulator pattern).
//
// The device-side matrix uses the padded column-major (ELLPACK) layout the
// early CUDA sparse kernels adopted: entry k of row i lives at [k*nodes+i],
// so consecutive threads read consecutive column indices and values —
// fully coalesced — while the x[col] gather remains the scattered access
// that makes FEM bandwidth-bound.
#pragma once

#include <cstdint>
#include <vector>

#include "core/app.h"
#include "cudalite/ctx.h"

namespace g80::apps {

struct FemMesh {
  int nodes = 0;
  // CSR adjacency (off-diagonal entries only) — host/reference layout.
  std::vector<int> row_ptr;    // nodes + 1
  std::vector<int> col_idx;    // nnz
  std::vector<float> values;   // nnz
  std::vector<float> diag;     // nodes (diagonally dominant)
  std::vector<float> rhs;      // nodes

  static FemMesh generate(int nodes, int avg_degree, std::uint64_t seed);

  // Device layout: ELLPACK with `ell_width` slots per row, padded with
  // (col = row, value = 0) entries so padded slots are harmless reads.
  int ell_width() const;
  void to_ell(std::vector<int>& cols, std::vector<float>& vals) const;
};

// `iters` Jacobi sweeps: x_new[i] = (b[i] - sum_j a_ij x[j]) / a_ii.
void fem_cpu(const FemMesh& m, int iters, std::vector<float>& x);

struct FemKernel {
  int nodes = 0;
  int ell_width = 0;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& ell_cols,
                  DeviceBuffer<float>& ell_vals, DeviceBuffer<float>& diag,
                  DeviceBuffer<float>& rhs, DeviceBuffer<float>& x_in,
                  DeviceBuffer<float>& x_out) const {
    auto Ci = ctx.global(ell_cols);
    auto Va = ctx.global(ell_vals);
    auto Dg = ctx.global(diag);
    auto B = ctx.global(rhs);
    auto Xi = ctx.global(x_in);
    auto Xo = ctx.global(x_out);

    ctx.ialu(2);
    const int i = ctx.global_thread_x();
    if (!ctx.branch(i < nodes)) return;

    float acc = B.ld(i);
    for (int k = 0; k < ell_width; ++k) {
      // Column/value streams coalesce (column-major ELL); the x[col] gather
      // is the scattered access the paper's FEM suffers.
      const std::size_t slot = static_cast<std::size_t>(k) * nodes +
                               static_cast<std::size_t>(i);
      const int col = Ci.ld(slot);
      acc = ctx.mad(ctx.sub(0.0f, Va.ld(slot)), Xi.ld(col), acc);
      ctx.ialu(2);
      ctx.loop_branch();
    }
    Xo.st(i, ctx.fdiv(acc, Dg.ld(i)));
  }
};

class FemApp : public App {
 public:
  AppInfo info() const override;
  AppResult run(const DeviceSpec& spec, RunScale scale) const override;
};

}  // namespace g80::apps
