#include "rt/runtime.h"

#include <algorithm>
#include <utility>

namespace g80::rt {

namespace {
// Set while a stream thread runs an op, so synchronization attempts from
// inside a callback (which would wait on the very stream executing them)
// can be diagnosed instead of deadlocking.
thread_local Runtime* t_active_runtime = nullptr;
}  // namespace

Runtime::Runtime(Device& dev, RuntimeOptions opt)
    : dev_(dev),
      pool_(WorkerPool::default_width(opt.workers)),
      profiler_(opt.profiler),
      scope_(opt.scope) {
  // Device::reset tears the runtime's streams back to a clean slate too:
  // drain whatever is in flight (errored streams drain without executing),
  // then drop every sticky per-stream failure, mirroring how cudaDeviceReset
  // invalidates outstanding async state.
  reset_hook_id_ = dev_.add_reset_hook([this] {
    std::unique_lock<std::mutex> lk(mu_);
    for (auto& [id, st] : streams_) {
      StreamImpl* p = st.get();
      cv_.wait(lk, [&] { return p->queue.empty() && !p->busy; });
    }
    for (auto& [id, st] : streams_) {
      st->error = nullptr;
      st->error_status = Status::kSuccess;
    }
  });
}

namespace detail {
std::vector<TimelineBlockSpan> wave_block_spans(const DeviceSpec& spec,
                                                const LaunchStats& stats,
                                                double op_seconds,
                                                int max_spans) {
  std::vector<TimelineBlockSpan> out;
  const std::uint64_t total = stats.grid.count();
  const std::uint64_t concurrent = static_cast<std::uint64_t>(
      std::max(1, stats.occupancy.blocks_per_sm * spec.num_sms));
  const std::uint64_t waves = (total + concurrent - 1) / concurrent;
  if (waves <= 1 || op_seconds <= 0) return out;  // span == whole kernel
  // Merge consecutive waves so at most max_spans slices are emitted; the
  // block ranges stay exact, so a merged slice still names every block.
  const std::uint64_t chunks =
      std::min<std::uint64_t>(waves, static_cast<std::uint64_t>(max_spans));
  out.reserve(chunks);
  for (std::uint64_t i = 0; i < chunks; ++i) {
    const std::uint64_t wave_lo = i * waves / chunks;
    const std::uint64_t wave_hi = (i + 1) * waves / chunks;
    TimelineBlockSpan b;
    b.first_block = wave_lo * concurrent;
    b.last_block = std::min(total, wave_hi * concurrent);
    b.start_s = op_seconds * static_cast<double>(wave_lo) /
                static_cast<double>(waves);
    b.end_s = op_seconds * static_cast<double>(wave_hi) /
              static_cast<double>(waves);
    out.push_back(b);
  }
  return out;
}
}  // namespace detail

Runtime::~Runtime() {
  // Deregister from the device first: a reset fired mid-destruction would
  // race the stream teardown below.
  dev_.remove_reset_hook(reset_hook_id_);
  // Drain and stop every stream.  Errors were already made sticky on the
  // Device; a destructor cannot rethrow them.
  std::vector<std::unique_ptr<StreamImpl>> victims;
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (auto& [id, st] : streams_) {
      StreamImpl* p = st.get();
      cv_.wait(lk, [&] { return p->queue.empty() && !p->busy; });
      p->stop = true;
      victims.push_back(std::move(st));
    }
    streams_.clear();
  }
  cv_.notify_all();
  for (auto& v : victims) v->thread.join();
}

Runtime::StreamImpl& Runtime::stream_impl_locked(const Stream& s) {
  if (s.owner == nullptr) {
    dev_.raise(Status::kInvalidResourceHandle,
               "null stream handle (default-constructed Stream)");
  }
  if (s.owner != this) {
    dev_.raise(Status::kInvalidDevice,
               "stream belongs to a different runtime/device");
  }
  auto it = streams_.find(s.id);
  if (it == streams_.end()) {
    dev_.raise(Status::kInvalidResourceHandle,
               "stream " + std::to_string(s.id) +
                   " was destroyed or never created");
  }
  return *it->second;
}

Runtime::EventImpl& Runtime::event_impl_locked(const Event& e) {
  if (e.owner == nullptr) {
    dev_.raise(Status::kInvalidResourceHandle,
               "null event handle (default-constructed Event)");
  }
  if (e.owner != this) {
    dev_.raise(Status::kInvalidDevice,
               "event belongs to a different runtime/device");
  }
  auto it = events_.find(e.id);
  if (it == events_.end()) {
    dev_.raise(Status::kInvalidResourceHandle,
               "event " + std::to_string(e.id) +
                   " was destroyed or never created");
  }
  return *it->second;
}

void Runtime::check_not_callback(const char* what) {
  if (t_active_runtime == this) {
    dev_.raise(Status::kNotPermitted,
               std::string(what) +
                   " from inside a stream callback would deadlock the "
                   "stream executing it");
  }
}

Stream Runtime::stream_create() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = next_stream_id_++;
  auto st = std::make_unique<StreamImpl>();
  st->id = id;
  StreamImpl* p = st.get();
  st->thread = std::thread([this, p] { stream_loop(p); });
  streams_.emplace(id, std::move(st));
  return Stream{id, this};
}

void Runtime::stream_destroy(Stream s) {
  check_not_callback("stream_destroy");
  std::unique_ptr<StreamImpl> victim;
  {
    std::unique_lock<std::mutex> lk(mu_);
    StreamImpl& st = stream_impl_locked(s);
    cv_.wait(lk, [&] { return st.queue.empty() && !st.busy; });
    st.stop = true;
    victim = std::move(streams_.at(s.id));
    streams_.erase(s.id);
  }
  cv_.notify_all();
  victim->thread.join();
}

void Runtime::stream_synchronize(Stream s) {
  check_not_callback("stream_synchronize");
  std::unique_lock<std::mutex> lk(mu_);
  StreamImpl& st = stream_impl_locked(s);
  cv_.wait(lk, [&] { return st.queue.empty() && !st.busy; });
  if (st.error) std::rethrow_exception(st.error);
}

bool Runtime::stream_query(Stream s) {
  std::lock_guard<std::mutex> lk(mu_);
  StreamImpl& st = stream_impl_locked(s);
  return st.queue.empty() && !st.busy;
}

Status Runtime::stream_get_last_error(Stream s) {
  std::lock_guard<std::mutex> lk(mu_);
  return stream_impl_locked(s).error_status;
}

void Runtime::stream_clear_error(Stream s) {
  std::lock_guard<std::mutex> lk(mu_);
  StreamImpl& st = stream_impl_locked(s);
  st.error = nullptr;
  st.error_status = Status::kSuccess;
}

void Runtime::device_synchronize() {
  check_not_callback("device_synchronize");
  std::unique_lock<std::mutex> lk(mu_);
  for (auto& [id, st] : streams_) {
    StreamImpl* p = st.get();
    cv_.wait(lk, [&] { return p->queue.empty() && !p->busy; });
  }
  for (auto& [id, st] : streams_) {
    if (st->error) std::rethrow_exception(st->error);
  }
}

Event Runtime::event_create() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = next_event_id_++;
  events_.emplace(id, std::make_unique<EventImpl>());
  return Event{id, this};
}

void Runtime::event_destroy(Event e) {
  check_not_callback("event_destroy");
  std::unique_lock<std::mutex> lk(mu_);
  EventImpl& ev = event_impl_locked(e);
  // A pending record op holds a pointer to the impl; wait it out so
  // destruction never leaves a dangling reference behind.
  cv_.wait(lk, [&] { return !ev.recorded || ev.complete; });
  events_.erase(e.id);
}

void Runtime::event_record(Stream s, Event e) {
  std::lock_guard<std::mutex> lk(mu_);
  StreamImpl& st = stream_impl_locked(s);
  EventImpl& ev = event_impl_locked(e);
  ev.recorded = true;
  ev.complete = false;
  Op op;
  op.seq = next_seq_++;
  op.engine = TimelineEngine::kHost;
  op.label = "event " + std::to_string(e.id);
  op.run = [](std::vector<TimelineBlockSpan>&, std::uint64_t&) {
    return 0.0;
  };
  op.event = &ev;
  st.queue.push_back(std::move(op));
  cv_.notify_all();
}

bool Runtime::event_query(Event e) {
  std::lock_guard<std::mutex> lk(mu_);
  EventImpl& ev = event_impl_locked(e);
  return !ev.recorded || ev.complete;
}

double Runtime::event_elapsed_seconds(Event start, Event stop) {
  std::lock_guard<std::mutex> lk(mu_);
  EventImpl& a = event_impl_locked(start);
  EventImpl& b = event_impl_locked(stop);
  if (!a.recorded || !b.recorded) {
    dev_.raise(Status::kNotReady,
               "event_elapsed_seconds: both events must be recorded first");
  }
  if (!a.complete || !b.complete) {
    dev_.raise(Status::kNotReady,
               "event_elapsed_seconds: events not yet complete; synchronize "
               "the stream first");
  }
  return b.timestamp_s - a.timestamp_s;
}

void Runtime::host_func(Stream s, std::function<void()> fn) {
  enqueue(s, TimelineEngine::kHost, "host_func",
          [fn = std::move(fn)](std::vector<TimelineBlockSpan>&,
                               std::uint64_t&) -> double {
            fn();
            return 0.0;
          });
}

void Runtime::enqueue(
    const Stream& s, TimelineEngine engine, std::string label,
    std::function<double(std::vector<TimelineBlockSpan>&, std::uint64_t&)> run,
    EventImpl* event) {
  std::lock_guard<std::mutex> lk(mu_);
  StreamImpl& st = stream_impl_locked(s);
  Op op;
  op.seq = next_seq_++;
  op.engine = engine;
  op.label = std::move(label);
  op.run = std::move(run);
  op.event = event;
  st.queue.push_back(std::move(op));
  cv_.notify_all();
}

void Runtime::stream_loop(StreamImpl* st) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return st->stop || !st->queue.empty(); });
    if (st->queue.empty()) {
      if (st->stop) return;
      continue;
    }
    Op op = std::move(st->queue.front());
    st->queue.pop_front();
    st->busy = true;
    const bool skip = static_cast<bool>(st->error);
    lk.unlock();

    double duration = 0;
    std::vector<TimelineBlockSpan> blocks;
    std::uint64_t scope_id = kNoScopeId;
    std::exception_ptr err;
    Status err_status = Status::kSuccess;
    if (!skip) {
      // After the first failure the stream drains its queue without
      // executing, CUDA-style; the error resurfaces at synchronization.
      t_active_runtime = this;
      try {
        duration = op.run(blocks, scope_id);
      } catch (const StatusError& e) {
        err = std::current_exception();
        err_status = e.status();
      } catch (...) {
        err = std::current_exception();
        err_status = Status::kLaunchFailure;
      }
      t_active_runtime = nullptr;
    }

    lk.lock();
    if (err && !st->error) {
      st->error = err;
      st->error_status = err_status;
    }
    PendingCommit pc;
    pc.stream = st->id;
    pc.engine = op.engine;
    pc.duration_s = err ? 0.0 : duration;
    pc.label = std::move(op.label);
    pc.blocks = err ? std::vector<TimelineBlockSpan>{} : std::move(blocks);
    pc.scope_id = err ? kNoScopeId : scope_id;
    pc.event = op.event;
    commit_locked(op.seq, std::move(pc));
    st->busy = false;
    cv_.notify_all();
  }
}

void Runtime::commit_locked(std::uint64_t seq, PendingCommit pc) {
  pending_.emplace(seq, std::move(pc));
  // Flush the chain strictly in issue order: a finished op whose
  // predecessors (on any stream) have not yet finished parks here, so the
  // modeled timeline is independent of thread scheduling.
  for (;;) {
    auto it = pending_.find(commit_seq_);
    if (it == pending_.end()) break;
    PendingCommit& p = it->second;
    const TimelineSpan& span =
        timeline_.schedule(p.stream, p.engine, p.duration_s,
                           std::move(p.label), std::move(p.blocks),
                           p.scope_id);
    if (p.event != nullptr) {
      p.event->complete = true;
      p.event->timestamp_s = span.end_s;
    }
    pending_.erase(it);
    ++commit_seq_;
  }
}

void Runtime::bind_metrics(obs::MetricsRegistry& reg,
                           const std::string& prefix) {
  // The ledger's counters are atomics read without any runtime lock, so a
  // scrape never contends with stream threads mid-op.
  const TransferLedger* ledger = &dev_.ledger();
  reg.gauge_callback(prefix + ".ledger.h2d_bytes", [ledger] {
    return static_cast<std::int64_t>(ledger->lifetime_h2d_bytes());
  });
  reg.gauge_callback(prefix + ".ledger.d2h_bytes", [ledger] {
    return static_cast<std::int64_t>(ledger->lifetime_d2h_bytes());
  });
  reg.gauge_callback(prefix + ".ledger.total_bytes", [ledger] {
    return static_cast<std::int64_t>(ledger->lifetime_total_bytes());
  });
  reg.gauge_callback(prefix + ".ledger.transfer_count", [ledger] {
    return static_cast<std::int64_t>(ledger->lifetime_transfer_count());
  });
}

Timeline Runtime::timeline_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return timeline_;
}

double Runtime::modeled_total_seconds() {
  device_synchronize();
  std::lock_guard<std::mutex> lk(mu_);
  return timeline_.total_seconds();
}

double Runtime::modeled_serialized_seconds() {
  device_synchronize();
  std::lock_guard<std::mutex> lk(mu_);
  return timeline_.serialized_seconds();
}

}  // namespace g80::rt
