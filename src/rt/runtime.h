// g80rt — streams, events, and the asynchronous host runtime for cudalite.
//
// A cudalite `launch` is synchronous, like CUDA's very first releases; the
// paper's §5 results repeatedly blame launch overhead and host<->device
// transfer time for eroding kernel speedups.  CUDA's answer was streams:
// FIFO queues of device work that run concurrently with the host and with
// each other.  g80rt reproduces that model:
//
//   - `stream_create` returns a FIFO queue backed by a dedicated host
//     thread; ops on one stream execute strictly in order, ops on different
//     streams execute concurrently.
//   - `memcpy_h2d_async` / `memcpy_d2h_async` / `launch_async` /
//     `host_func` enqueue work and return immediately.
//   - `event_record` / `event_elapsed_seconds` expose modeled timestamps;
//     `stream_synchronize` / `device_synchronize` join the host with the
//     device, rethrowing any asynchronous failure (whose Status is already
//     sticky on the Device, CUDA-style).
//
// Two clocks run side by side.  Wall-clock: ops really execute on stream
// threads, and kernels fan their blocks across the runtime's WorkerPool.
// Modeled clock: every op is committed to a `Timeline` in issue order with
// its modeled duration (`transfer_seconds` for copies, `total_seconds` for
// kernels), reproducing the G80's one-compute-engine/one-copy-engine
// overlap.  Commit order is the enqueue order, not the completion order, so
// the modeled timeline and every event timestamp are deterministic no
// matter how the OS schedules the stream threads.
//
// Runtime misuse — ops on destroyed streams, events shared across runtimes,
// synchronizing from inside a stream callback — raises through the sticky
// `g80::Status` model (docs/runtime.md has the full table).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "prof/profiler.h"
#include "timing/timeline.h"

namespace g80::rt {

class Runtime;

// Value handles, CUDA-style: cheap to copy, validated on every use.  The
// owner pointer lets misuse across runtimes (devices) be diagnosed as
// kInvalidDevice rather than an accidental id collision.
struct Stream {
  std::uint64_t id = 0;
  Runtime* owner = nullptr;
};

struct Event {
  std::uint64_t id = 0;
  Runtime* owner = nullptr;
};

struct RuntimeOptions {
  // Block-parallel width for kernels launched through the runtime (and for
  // anything else using this runtime's pool).  0 = hardware concurrency,
  // clamped to [1, 16].
  int workers = 0;
  // g80prof: when set, every launch and async copy on every stream of this
  // runtime records into the profiler (kernels keyed by
  // LaunchOptions::prof.kernel_name, transfers into the transfer totals),
  // and kernel timeline spans carry per-wave block spans for the Chrome
  // trace.  Null = no profiling, zero additional work per op.
  prof::Profiler* profiler = nullptr;
  // g80scope: when set, every launch derives its per-SM time series into
  // this session and the launch's timeline span is stamped with the record
  // id, letting scope::chrome_trace_with_counters align counter tracks
  // under the kernel slice.  Null = no scoping, zero additional work.
  scope::Session* scope = nullptr;
};

namespace detail {
// Modeled per-wave block spans of one kernel launch, relative to the op's
// start and scaled to fill `op_seconds`.  At most `max_spans` spans are
// emitted; longer launches merge consecutive waves into one span (the block
// ranges in the labels stay exact, so nothing is dropped silently).
std::vector<TimelineBlockSpan> wave_block_spans(const DeviceSpec& spec,
                                                const LaunchStats& stats,
                                                double op_seconds,
                                                int max_spans = 64);
}  // namespace detail

class Runtime {
 public:
  explicit Runtime(Device& dev, RuntimeOptions opt = {});
  ~Runtime();  // drains every stream, then joins all threads

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Device& device() { return dev_; }
  WorkerPool& pool() { return pool_; }
  prof::Profiler* profiler() { return profiler_; }
  scope::Session* scope() { return scope_; }

  // --- Streams ---
  Stream stream_create();
  // Drains the stream (like cudaStreamDestroy's implicit sync), then joins
  // its thread.  Further ops on the handle raise kInvalidResourceHandle.
  void stream_destroy(Stream s);
  // Blocks until every op enqueued so far has completed; rethrows the
  // stream's first asynchronous failure (sticky: rethrown again on the next
  // synchronize, and the Status stays recorded on the Device).
  void stream_synchronize(Stream s);
  bool stream_query(Stream s);  // true iff all enqueued work has completed
  // Synchronizes all live streams in creation order; rethrows the failure
  // of the lowest-id errored stream.
  void device_synchronize();

  // --- Per-stream error isolation (g80resil) ---
  // The Status of the stream's first asynchronous failure (kSuccess if none),
  // without waiting and without clearing it — the per-stream analogue of
  // Device::peek_last_error.  Other streams' failures never show here.
  Status stream_get_last_error(Stream s);
  // Clears the stream's sticky failure so subsequently enqueued ops execute
  // again (skipped ops are gone; they were drained, not replayed).  The
  // device-level sticky Status is untouched — clear it separately via
  // Device::get_last_error or Device::reset.
  void stream_clear_error(Stream s);

  // --- Events ---
  Event event_create();
  void event_destroy(Event e);  // waits for a pending record, then frees
  void event_record(Stream s, Event e);
  // True once the recorded op has completed and been committed to the
  // modeled timeline.  Never-recorded events are trivially complete.
  bool event_query(Event e);
  // Modeled seconds between two completed events (stop - start; events on
  // one stream are monotone).  Raises kNotReady before completion.
  double event_elapsed_seconds(Event start, Event stop);

  // --- Async ops (all FIFO within their stream) ---

  // The source is taken by value: the runtime owns it until the copy
  // executes, so the caller needs no lifetime discipline beyond `dst`.
  template <class T>
  void memcpy_h2d_async(Stream s, DeviceBuffer<T>& dst, std::vector<T> src) {
    auto data = std::make_shared<std::vector<T>>(std::move(src));
    const std::uint64_t bytes = data->size() * sizeof(T);
    enqueue(s, TimelineEngine::kCopy, "h2d " + std::to_string(bytes) + " B",
            [this, &dst, data, sid = s.id](std::vector<TimelineBlockSpan>&,
                                           std::uint64_t&) -> double {
              dst.copy_from_host(std::span<const T>(*data));
              const std::uint64_t n = data->size() * sizeof(T);
              const double secs = transfer_seconds(dev_.spec(), n, 1);
              if (profiler_ != nullptr)
                profiler_->record_transfer(/*h2d=*/true, n, secs, sid);
              return secs;
            });
  }

  // `dst` is assigned when the copy executes; read it only after
  // synchronizing the stream.
  template <class T>
  void memcpy_d2h_async(Stream s, std::vector<T>& dst,
                        const DeviceBuffer<T>& src) {
    enqueue(s, TimelineEngine::kCopy,
            "d2h " + std::to_string(src.bytes()) + " B",
            [this, &dst, &src, sid = s.id](std::vector<TimelineBlockSpan>&,
                                           std::uint64_t&) -> double {
              dst = src.copy_to_host();
              const double secs = transfer_seconds(dev_.spec(), src.bytes(), 1);
              if (profiler_ != nullptr)
                profiler_->record_transfer(/*h2d=*/false, src.bytes(), secs,
                                           sid);
              return secs;
            });
  }

  // Asynchronous kernel launch.  Buffers in `args` must stay alive until
  // the stream synchronizes.  `stats_out` (optional) is filled when the
  // launch completes — read it only after synchronizing.  Unless the caller
  // supplied an explicit pool, blocks fan out across this runtime's pool;
  // unless the caller attached an explicit profiler sink, the runtime's
  // profiler (RuntimeOptions::profiler) receives the launch, keyed by
  // LaunchOptions::prof.kernel_name and tagged with this stream's id.
  template <class Kernel, class... Args>
  void launch_async(Stream s, Dim3 grid, Dim3 block, LaunchOptions opt,
                    LaunchStats* stats_out, const Kernel& kernel,
                    Args&... args) {
    const std::string label = "kernel " + std::to_string(grid.count()) +
                              " blocks" +
                              (opt.prof.kernel_name.empty()
                                   ? std::string()
                                   : " (" + opt.prof.kernel_name + ")");
    enqueue(s, TimelineEngine::kCompute, label,
            [this, grid, block, opt, stats_out, kernel, sid = s.id,
             targs = std::tuple<Args&...>(args...)](
                std::vector<TimelineBlockSpan>& blocks,
                std::uint64_t& scope_id) -> double {
              LaunchOptions o = opt;
              if (o.pool == nullptr) o.pool = &pool_;
              if (o.prof.sink == nullptr) o.prof.sink = profiler_;
              o.prof.stream = sid;
              // Unless the caller attached an explicit scope session, use
              // the runtime's; the record id tags this op's timeline span.
              if (o.scope.sink == nullptr) o.scope.sink = scope_;
              if (o.scope.sink != nullptr && o.scope.id_out == nullptr)
                o.scope.id_out = &scope_id;
              const LaunchStats st = std::apply(
                  [&](Args&... as) {
                    return g80::launch(dev_, grid, block, o, kernel, as...);
                  },
                  targs);
              if (stats_out != nullptr) *stats_out = st;
              const double secs = st.total_seconds(dev_.spec());
              if (o.prof.sink != nullptr)
                blocks = detail::wave_block_spans(dev_.spec(), st, secs);
              return secs;
            });
  }

  // Stream-ordered host callback (cudaLaunchHostFunc).  Takes no modeled
  // time and no engine.  Synchronizing this runtime from inside the
  // callback raises kNotPermitted — it would deadlock the stream.
  void host_func(Stream s, std::function<void()> fn);

  // --- g80obs ---
  // Registers this runtime's transfer-ledger totals as callback gauges in
  // `reg` under "<prefix>.ledger.*" (h2d_bytes, d2h_bytes, total_bytes,
  // transfer_count — the lifetime counters, which survive Device::reset).
  // Zero steady-state cost: the ledger is only read when `reg` is scraped,
  // so binding a runtime that is never scraped costs nothing per op.  The
  // registry must not outlive this runtime's Device.
  void bind_metrics(obs::MetricsRegistry& reg,
                    const std::string& prefix = "rt");

  // --- Modeled timeline ---
  // Spans commit in issue order as ops complete; synchronize first for a
  // complete picture.
  Timeline timeline_snapshot() const;
  double modeled_total_seconds();       // device_synchronize + makespan
  double modeled_serialized_seconds();  // device_synchronize + no-overlap sum

 private:
  struct EventImpl {
    bool recorded = false;   // an event_record op references this event
    bool complete = false;   // that op has committed
    double timestamp_s = 0;  // modeled stream time at the record point
  };

  struct Op {
    std::uint64_t seq = 0;
    TimelineEngine engine = TimelineEngine::kHost;
    std::string label;
    // Executes; returns the modeled duration and may fill per-wave block
    // spans (kernel ops under profiling) and the g80scope record id (kernel
    // ops under scoping) for the committed timeline span.
    std::function<double(std::vector<TimelineBlockSpan>&, std::uint64_t&)> run;
    EventImpl* event = nullptr;
  };

  struct StreamImpl {
    std::uint64_t id = 0;
    std::deque<Op> queue;  // guarded by the runtime mutex
    bool busy = false;     // thread is executing an op
    bool stop = false;
    std::exception_ptr error;  // first async failure; later ops are skipped
    Status error_status = Status::kSuccess;  // its Status, for peeking
    std::thread thread;
  };

  struct PendingCommit {
    std::uint64_t stream = 0;
    TimelineEngine engine = TimelineEngine::kHost;
    double duration_s = 0;
    std::string label;
    std::vector<TimelineBlockSpan> blocks;
    std::uint64_t scope_id = kNoScopeId;
    EventImpl* event = nullptr;
  };

  // All three validate handles and raise on misuse; callers hold mu_.
  StreamImpl& stream_impl_locked(const Stream& s);
  EventImpl& event_impl_locked(const Event& e);
  void check_not_callback(const char* what);

  void enqueue(
      const Stream& s, TimelineEngine engine, std::string label,
      std::function<double(std::vector<TimelineBlockSpan>&, std::uint64_t&)>
          run,
      EventImpl* event = nullptr);
  void stream_loop(StreamImpl* st);
  // Record one finished op and flush the commit chain in issue order.
  void commit_locked(std::uint64_t seq, PendingCommit pc);

  Device& dev_;
  WorkerPool pool_;
  prof::Profiler* profiler_ = nullptr;
  scope::Session* scope_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Timeline timeline_;
  std::map<std::uint64_t, std::unique_ptr<StreamImpl>> streams_;
  std::map<std::uint64_t, std::unique_ptr<EventImpl>> events_;
  std::map<std::uint64_t, PendingCommit> pending_;  // awaiting earlier seqs
  std::uint64_t next_stream_id_ = 1;
  std::uint64_t next_event_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t commit_seq_ = 0;
  std::uint64_t reset_hook_id_ = 0;  // Device::reset integration
};

}  // namespace g80::rt
