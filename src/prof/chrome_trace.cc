#include "prof/chrome_trace.h"

#include <string>

#include "common/json.h"
#include "common/provenance.h"

namespace g80::prof {

namespace {

// chrome://tracing sorts tracks by tid when sort_index metadata is absent;
// keep compute above copy above host.
int engine_tid(TimelineEngine e) {
  switch (e) {
    case TimelineEngine::kCompute: return 1;
    case TimelineEngine::kCopy: return 2;
    case TimelineEngine::kHost: return 3;
  }
  return 3;
}

constexpr int kPid = 1;

// Complete ("X") duration event for a timeline span, tagging the issuing
// stream and sequence number.
void emit_slice(JsonWriter& w, int tid, const std::string& name,
                double start_s, double dur_s, std::uint64_t stream,
                std::uint64_t seq) {
  chrome_emit_slice(w, kPid, tid, name, start_s, dur_s,
                    [&](JsonWriter& args) {
                      args.kv("stream", stream).kv("seq", seq);
                    });
}

}  // namespace

void chrome_emit_slice(JsonWriter& w, int pid, int tid, std::string_view name,
                       double start_s, double dur_s,
                       const std::function<void(JsonWriter&)>& args) {
  w.begin_object()
      .kv("name", name)
      .kv("ph", "X")
      .kv("pid", pid)
      .kv("tid", tid)
      .kv("ts", start_s * 1e6)
      .kv("dur", dur_s * 1e6);
  if (args) {
    w.key("args").begin_object();
    args(w);
    w.end_object();
  }
  w.end_object();
}

void chrome_emit_instant(JsonWriter& w, int pid, int tid,
                         std::string_view name, double t_s,
                         const std::function<void(JsonWriter&)>& args) {
  w.begin_object()
      .kv("name", name)
      .kv("ph", "i")
      .kv("s", "t")  // thread-scoped instant marker
      .kv("pid", pid)
      .kv("tid", tid)
      .kv("ts", t_s * 1e6);
  if (args) {
    w.key("args").begin_object();
    args(w);
    w.end_object();
  }
  w.end_object();
}

void chrome_emit_process_name(JsonWriter& w, int pid, std::string_view name) {
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", pid)
      .key("args")
      .begin_object()
      .kv("name", name)
      .end_object()
      .end_object();
}

void chrome_emit_thread_name(JsonWriter& w, int pid, int tid,
                             std::string_view name) {
  w.begin_object()
      .kv("name", "thread_name")
      .kv("ph", "M")
      .kv("pid", pid)
      .kv("tid", tid)
      .key("args")
      .begin_object()
      .kv("name", name)
      .end_object()
      .end_object();
}

std::string chrome_trace_json(const Timeline& tl,
                              const ChromeTraceOptions& opt) {
  JsonWriter w;
  w.begin_object().kv("displayTimeUnit", "ms");
  {
    // Device fields are only known when the caller passes opt.spec; the
    // build/git fields stamp every trace regardless.
    Provenance p = build_provenance("g80-chrome-trace");
    if (opt.spec != nullptr) {
      p.device = opt.spec->name;
      p.device_spec_hash = device_spec_hash(*opt.spec);
    }
    write_provenance(w, p);
  }
  w.key("traceEvents").begin_array();

  // Track metadata: one named process, one named track per engine.
  chrome_emit_process_name(w, kPid, "g80 device (modeled)");
  chrome_emit_thread_name(w, kPid, engine_tid(TimelineEngine::kCompute),
                          "compute engine");
  chrome_emit_thread_name(w, kPid, engine_tid(TimelineEngine::kCopy),
                          "copy engine (DMA)");
  chrome_emit_thread_name(w, kPid, engine_tid(TimelineEngine::kHost),
                          "host (stream-ordered)");

  for (const TimelineSpan& s : tl.spans()) {
    const int tid = engine_tid(s.engine);
    emit_slice(w, tid, s.label, s.start_s, s.duration_s(), s.stream, s.seq);
    if (opt.block_spans) {
      for (const TimelineBlockSpan& b : s.blocks) {
        emit_slice(w, tid,
                   "blocks [" + std::to_string(b.first_block) + "," +
                       std::to_string(b.last_block) + ")",
                   b.start_s, b.end_s - b.start_s, s.stream, s.seq);
      }
    }
  }

  if (opt.extra_events) opt.extra_events(w);
  w.end_array().end_object();
  return w.str();
}

}  // namespace g80::prof
