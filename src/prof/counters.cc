#include "prof/counters.h"

namespace g80::prof {

double KernelCounters::grid_scale() const {
  return blocks_sampled == 0 ? 0.0
                             : static_cast<double>(blocks_total) /
                                   static_cast<double>(blocks_sampled);
}

double KernelCounters::fmad_fraction() const {
  return instructions == 0 ? 0.0
                           : static_cast<double>(mix[OpClass::kFMad]) /
                                 static_cast<double>(instructions);
}

double KernelCounters::coalesced_fraction() const {
  const std::uint64_t total =
      gld_coalesced + gld_uncoalesced + gst_coalesced + gst_uncoalesced;
  return total == 0 ? 1.0
                    : static_cast<double>(gld_coalesced + gst_coalesced) /
                          static_cast<double>(total);
}

double KernelCounters::divergent_branch_fraction() const {
  return branch == 0 ? 0.0
                     : static_cast<double>(divergent_branch) /
                           static_cast<double>(branch);
}

KernelCounters& KernelCounters::operator+=(const KernelCounters& o) {
  gld_coalesced += o.gld_coalesced;
  gld_uncoalesced += o.gld_uncoalesced;
  gst_coalesced += o.gst_coalesced;
  gst_uncoalesced += o.gst_uncoalesced;
  global_transactions += o.global_transactions;
  dram_bytes += o.dram_bytes;
  useful_bytes += o.useful_bytes;
  warp_serialize += o.warp_serialize;
  shared_bank_replays += o.shared_bank_replays;
  const_serialize += o.const_serialize;
  const_requests += o.const_requests;
  tex_cache_hits += o.tex_cache_hits;
  tex_cache_misses += o.tex_cache_misses;
  branch += o.branch;
  divergent_branch += o.divergent_branch;
  sync += o.sync;
  instructions += o.instructions;
  mix += o.mix;
  flops += o.flops;
  blocks_sampled += o.blocks_sampled;
  blocks_total += o.blocks_total;
  warps_sampled += o.warps_sampled;
  // Occupancy is a per-launch property, not an accumulable count: keep the
  // most recent launch's values (launches aggregated under one kernel name
  // run the same configuration in this suite).
  achieved_occupancy = o.achieved_occupancy;
  blocks_per_sm = o.blocks_per_sm;
  active_warps_per_sm = o.active_warps_per_sm;
  return *this;
}

KernelCounters derive_counters(const DeviceSpec& spec,
                               const LaunchStats& stats) {
  const WarpTrace& t = stats.trace.total;
  KernelCounters c;
  c.gld_coalesced = t.gld_coalesced;
  c.gld_uncoalesced = t.gld_instructions - t.gld_coalesced;
  c.gst_coalesced = t.gst_coalesced;
  c.gst_uncoalesced = t.gst_instructions - t.gst_coalesced;
  c.global_transactions = t.global.transactions;
  c.dram_bytes = t.global.bytes;
  c.useful_bytes = t.useful_global_bytes;
  c.shared_bank_replays = t.shared_extra_passes;
  c.const_serialize = t.const_extra_passes;
  c.warp_serialize = t.shared_extra_passes + t.const_extra_passes;
  c.const_requests = t.ops[OpClass::kLoadConst];
  c.tex_cache_hits = t.texture_hits;
  c.tex_cache_misses = t.texture_misses;
  c.branch = t.branches;
  c.divergent_branch = t.divergent_branches;
  c.sync = t.ops[OpClass::kSync];
  c.instructions = t.ops.total();
  c.mix = t.ops;
  c.flops = t.lane_flops;
  c.blocks_sampled = stats.trace.num_blocks;
  c.blocks_total = stats.grid.count();
  c.warps_sampled = stats.trace.num_warps;
  c.achieved_occupancy = stats.occupancy.fraction(spec);
  c.blocks_per_sm = stats.occupancy.blocks_per_sm;
  c.active_warps_per_sm = stats.occupancy.active_warps_per_sm;
  return c;
}

}  // namespace g80::prof
