// g80prof — a CUDA-Visual-Profiler-style session profiler.
//
// A Profiler is a session-scoped sink: attach it to launches via
// `LaunchOptions::prof.sink` (or to a whole g80rt runtime via
// `RuntimeOptions::profiler`) and it accumulates per-kernel counter
// profiles and host<->device transfer totals across every launch and
// stream that reports to it.  Recording happens once per launch, *after*
// the launch's passes complete, from statistics the trace pass produced
// anyway — so a launch with no sink attached executes exactly the same
// instructions as before the profiler existed, and a launch with a sink
// attached produces bit-identical kernel outputs (bench/prof_overhead.cc
// asserts both).
//
// Thread safety: g80rt streams record concurrently from their host
// threads; all mutation is mutex-guarded.  Aggregation is keyed by kernel
// name in first-launch order, mirroring the profiler tables nvprof-era
// tools print.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "prof/counters.h"
#include "timing/model.h"

namespace g80::prof {

// One kernel's aggregated profile (all launches recorded under one name).
struct KernelProfile {
  std::string name;
  std::uint64_t launches = 0;
  KernelCounters counters;     // summed over launches
  double modeled_seconds = 0;  // summed device-side kernel time
  // Most recent launch's headline numbers and configuration (launches
  // sharing a name run the same kernel in this suite).
  double gflops = 0;
  double dram_gbs = 0;
  Bottleneck bottleneck = Bottleneck::kInstructionIssue;
  int regs_per_thread = 0;
  std::size_t smem_per_block = 0;
  int max_simultaneous_threads = 0;  // Table 3, column 2
  Dim3 grid, block;
  // g80resil recovery provenance, accumulated over launches: total retried
  // attempts, launches with a watchdog-cancelled attempt, launches that
  // succeeded only via retry, and launches whose final attempt ran at a
  // degraded fallback level (see resil/policy.h).
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t recovered = 0;
  std::uint64_t fallback_launches = 0;
};

// Host<->device transfer totals (paper Table 3's "CPU-GPU transfer time").
struct TransferTotals {
  std::uint64_t h2d_count = 0, d2h_count = 0;
  std::uint64_t h2d_bytes = 0, d2h_bytes = 0;
  double modeled_seconds = 0;
};

class Profiler {
 public:
  void record_launch(std::string_view kernel_name, const DeviceSpec& spec,
                     const LaunchStats& stats, std::uint64_t stream = 0);
  void record_transfer(bool h2d, std::uint64_t bytes, double modeled_seconds,
                       std::uint64_t stream = 0);

  // Per-kernel profiles in first-launch order.
  std::vector<KernelProfile> kernels() const;
  TransferTotals transfers() const;
  std::uint64_t total_launches() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<KernelProfile> kernels_;  // ordered; linear lookup by name
  TransferTotals transfers_;
};

}  // namespace g80::prof
