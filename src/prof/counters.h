// g80prof hardware-style counters — the CUDA Visual Profiler's vocabulary
// over this simulator's launch statistics.
//
// The real G80-era profiler exposed a small set of per-launch signals
// (gld_coherent/gld_incoherent, gst_coherent/gst_incoherent, warp_serialize,
// divergent_branch, branch, instructions, cta_launched) collected from the
// hardware counters of a single TPC — i.e. from a *sample* of the grid that
// the user scales up.  g80prof mirrors that contract: every counter here is
// derived from the launch's trace pass over `blocks_sampled` blocks (the
// same sample that feeds the timing model), and `grid_scale()` is the
// factor that extrapolates to the whole grid.  Nothing is measured in the
// functional pass, so enabling the profiler cannot perturb results.
//
// Each counter feeds a specific equation in the paper's methodology — see
// docs/profiling.md for the full glossary (counter -> paper equation).
#pragma once

#include <cstdint>

#include "cudalite/launch.h"
#include "hw/isa.h"

namespace g80::prof {

struct KernelCounters {
  // --- Global memory, warp-level instructions (paper §3.2 / §4.1) ---
  // A load/store is "coalesced" when both of its half-warps collapse into
  // one 16-word-line transaction each; otherwise it serializes per lane.
  std::uint64_t gld_coalesced = 0;    // aka gld_coherent
  std::uint64_t gld_uncoalesced = 0;  // aka gld_incoherent
  std::uint64_t gst_coalesced = 0;    // aka gst_coherent
  std::uint64_t gst_uncoalesced = 0;  // aka gst_incoherent
  std::uint64_t global_transactions = 0;  // post-coalescing DRAM requests
  std::uint64_t dram_bytes = 0;           // bytes moved (>= useful_bytes)
  std::uint64_t useful_bytes = 0;         // bytes the program asked for

  // --- On-chip serialization (paper §5.2, principle 3) ---
  // warp_serialize = shared-memory bank-conflict replays + constant-cache
  // distinct-address replays, the profiler counter of the same name.
  std::uint64_t warp_serialize = 0;
  std::uint64_t shared_bank_replays = 0;
  std::uint64_t const_serialize = 0;

  // --- Read-only caches (paper Table 1) ---
  std::uint64_t const_requests = 0;  // warp-level ld.const instructions
  std::uint64_t tex_cache_hits = 0;
  std::uint64_t tex_cache_misses = 0;

  // --- Control flow (paper principle 3) ---
  std::uint64_t branch = 0;
  std::uint64_t divergent_branch = 0;
  std::uint64_t sync = 0;  // bar.sync warp-instructions

  // --- Instruction mix (paper §4.1, Table 2's FP-operation columns) ---
  std::uint64_t instructions = 0;  // warp-level dynamic instruction count
  OpCounts mix;                    // per-class buckets (warp-level)
  double flops = 0;                // lane-level FP operations

  // --- Sampling frame ---
  std::uint64_t blocks_sampled = 0;  // blocks the trace pass executed
  std::uint64_t blocks_total = 0;    // cta_launched for the whole grid
  std::uint64_t warps_sampled = 0;

  // --- Occupancy (paper §4.2) ---
  double achieved_occupancy = 0;  // active threads / max contexts per SM
  int blocks_per_sm = 0;
  int active_warps_per_sm = 0;

  // Extrapolation factor from the sampled blocks to the full grid (the
  // "multiply by #TPCs" step of the real profiler's workflow).
  double grid_scale() const;
  // FMAD share of the warp-level instruction mix — the §4.1 headline input
  // to potential-throughput arithmetic.
  double fmad_fraction() const;
  double coalesced_fraction() const;      // loads + stores combined
  double divergent_branch_fraction() const;

  KernelCounters& operator+=(const KernelCounters& o);
  // Exact equality: counters are pure functions of the trace pass, so the
  // batched and legacy recorder paths must agree on every field
  // (tests/trace_batch_test.cc, bench/rt_throughput.cc traced gate).
  bool operator==(const KernelCounters&) const = default;
};

// Derive the counters from one launch's statistics.  Pure function of the
// trace pass's output: no state is carried and the launch itself is not
// re-executed.
KernelCounters derive_counters(const DeviceSpec& spec,
                               const LaunchStats& stats);

}  // namespace g80::prof
