#include "prof/profiler.h"

namespace g80::prof {

void Profiler::record_launch(std::string_view kernel_name,
                             const DeviceSpec& spec, const LaunchStats& stats,
                             std::uint64_t /*stream*/) {
  const KernelCounters c = derive_counters(spec, stats);
  std::lock_guard<std::mutex> lk(mu_);
  KernelProfile* p = nullptr;
  for (auto& k : kernels_) {
    if (k.name == kernel_name) {
      p = &k;
      break;
    }
  }
  if (p == nullptr) {
    kernels_.emplace_back();
    p = &kernels_.back();
    p->name = std::string(kernel_name);
  }
  ++p->launches;
  p->counters += c;
  p->modeled_seconds += stats.timing.seconds;
  p->gflops = stats.timing.gflops;
  p->dram_gbs = stats.timing.dram_gbs;
  p->bottleneck = stats.timing.bottleneck;
  p->regs_per_thread = stats.regs_per_thread;
  p->smem_per_block = stats.smem_per_block;
  p->max_simultaneous_threads = stats.occupancy.max_simultaneous_threads(spec);
  p->grid = stats.grid;
  p->block = stats.block;
  p->retries += static_cast<std::uint64_t>(stats.resilience.retries());
  if (stats.resilience.timed_out) ++p->timeouts;
  if (stats.resilience.recovered) ++p->recovered;
  if (stats.resilience.fallback_level > 0) ++p->fallback_launches;
}

void Profiler::record_transfer(bool h2d, std::uint64_t bytes,
                               double modeled_seconds,
                               std::uint64_t /*stream*/) {
  std::lock_guard<std::mutex> lk(mu_);
  if (h2d) {
    ++transfers_.h2d_count;
    transfers_.h2d_bytes += bytes;
  } else {
    ++transfers_.d2h_count;
    transfers_.d2h_bytes += bytes;
  }
  transfers_.modeled_seconds += modeled_seconds;
}

std::vector<KernelProfile> Profiler::kernels() const {
  std::lock_guard<std::mutex> lk(mu_);
  return kernels_;
}

TransferTotals Profiler::transfers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return transfers_;
}

std::uint64_t Profiler::total_launches() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k.launches;
  return n;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  kernels_.clear();
  transfers_ = TransferTotals{};
}

// Out-of-line bridge for the launch() template (declared in
// cudalite/launch.h): lets cudalite record into an attached profiler
// without a header dependency on src/prof.
namespace detail {
void record_launch(Profiler& sink, const std::string& kernel_name,
                   std::uint64_t stream, const DeviceSpec& spec,
                   const LaunchStats& stats) {
  sink.record_launch(kernel_name.empty() ? "kernel" : kernel_name, spec,
                     stats, stream);
}
}  // namespace detail

}  // namespace g80::prof
