// Chrome trace-event exporter for the modeled g80rt Timeline.
//
// Serializes a `Timeline` into the JSON Trace Event Format that
// chrome://tracing (and Perfetto's legacy importer) loads directly:
// one process ("g80 device (modeled)") with one track per engine —
// compute, copy, host — so the copy/compute overlap that streams buy is
// visually inspectable, plus the issuing stream id on every slice.
// Kernel spans that carry per-wave block spans (see TimelineBlockSpan)
// render those as properly nested child slices on the compute track.
//
// Usage:
//   rt::Runtime r(dev);
//   ... enqueue work ...; r.device_synchronize();
//   std::ofstream("trace.json") << prof::chrome_trace_json(
//       r.timeline_snapshot());
// then load trace.json at chrome://tracing.  docs/profiling.md walks
// through the workflow.
#pragma once

#include <functional>
#include <string>

#include "common/json.h"
#include "hw/device_spec.h"
#include "timing/timeline.h"

namespace g80::prof {

struct ChromeTraceOptions {
  // Emit the nested per-wave block slices of kernel spans.
  bool block_spans = true;
  // When set, the trace carries a top-level "provenance" object stamped
  // with build identity and this modeled device (trace viewers ignore
  // unknown top-level keys, so the file still loads everywhere).
  const DeviceSpec* spec = nullptr;
  // Hook appending extra events inside the open traceEvents array, after
  // the engine spans.  g80scope's per-SM counter tracks arrive through here
  // (scope/chrome_counters.h) so one file holds spans and counters without
  // prof depending on the scope layer.
  std::function<void(JsonWriter&)> extra_events;
};

std::string chrome_trace_json(const Timeline& tl,
                              const ChromeTraceOptions& opt = {});

}  // namespace g80::prof
