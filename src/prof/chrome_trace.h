// Chrome trace-event exporter for the modeled g80rt Timeline.
//
// Serializes a `Timeline` into the JSON Trace Event Format that
// chrome://tracing (and Perfetto's legacy importer) loads directly:
// one process ("g80 device (modeled)") with one track per engine —
// compute, copy, host — so the copy/compute overlap that streams buy is
// visually inspectable, plus the issuing stream id on every slice.
// Kernel spans that carry per-wave block spans (see TimelineBlockSpan)
// render those as properly nested child slices on the compute track.
//
// Usage:
//   rt::Runtime r(dev);
//   ... enqueue work ...; r.device_synchronize();
//   std::ofstream("trace.json") << prof::chrome_trace_json(
//       r.timeline_snapshot());
// then load trace.json at chrome://tracing.  docs/profiling.md walks
// through the workflow.
#pragma once

#include <functional>
#include <string>

#include "common/json.h"
#include "hw/device_spec.h"
#include "timing/timeline.h"

namespace g80::prof {

struct ChromeTraceOptions {
  // Emit the nested per-wave block slices of kernel spans.
  bool block_spans = true;
  // When set, the trace carries a top-level "provenance" object stamped
  // with build identity and this modeled device (trace viewers ignore
  // unknown top-level keys, so the file still loads everywhere).
  const DeviceSpec* spec = nullptr;
  // Hook appending extra events inside the open traceEvents array, after
  // the engine spans.  g80scope's per-SM counter tracks arrive through here
  // (scope/chrome_counters.h) so one file holds spans and counters without
  // prof depending on the scope layer.
  std::function<void(JsonWriter&)> extra_events;
};

std::string chrome_trace_json(const Timeline& tl,
                              const ChromeTraceOptions& opt = {});

// Low-level trace-event emitters, shared by the Timeline exporter above and
// g80obs's server-span exporter (obs/export.cc) so serve traces and kernel
// timelines are the same dialect and open in the same viewer.  All four
// append one event object inside an already-open traceEvents array; times
// are seconds (converted to the format's microseconds here, in one place).
// `args`, when non-null, is invoked inside an open "args" object.
void chrome_emit_slice(JsonWriter& w, int pid, int tid, std::string_view name,
                       double start_s, double dur_s,
                       const std::function<void(JsonWriter&)>& args = {});
void chrome_emit_instant(JsonWriter& w, int pid, int tid,
                         std::string_view name, double t_s,
                         const std::function<void(JsonWriter&)>& args = {});
void chrome_emit_process_name(JsonWriter& w, int pid, std::string_view name);
void chrome_emit_thread_name(JsonWriter& w, int pid, int tid,
                             std::string_view name);

}  // namespace g80::prof
